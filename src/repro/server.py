"""``repro.server``: the multi-tenant streaming repair daemon.

The paper's component-locality result makes repair a *service*: a delta
re-solves only the conflict components it touches, and component
repairs are content-addressed, so many concurrent ``(tenant, table, Δ)``
streams can share one warm :class:`~repro.exec.PersistentWorkerPool`
and one :class:`~repro.session.SolutionCache` — one tenant's solve is
every co-tenant's cache hit wherever their component content coincides.

The module splits along the engine-state / process-lifecycle seam the
session layer exposes:

:class:`SessionManager`
    Owns engine state: the registry of sessions, per-tenant memory
    accounting, admission control, and LRU eviction + rehydration.
    Eviction freezes a session to its pickled
    :meth:`~repro.session.RepairSession.export_state` snapshot (the
    component cache is content-addressed, so a shared-cache session
    loses nothing by being frozen); rehydration rebuilds it attached to
    the *same* shared pool and cache, byte-identical to a session that
    was never evicted.  The manager is transport-free and synchronous —
    tests drive it directly.

:class:`RepairServer`
    Owns process lifecycle: the asyncio event loop, TCP/stdio
    transports, the executor threads solver work runs on, and clean
    shutdown.  Requests speak the JSONL protocol of
    :mod:`repro.protocol` (the ``fdrepair stream`` op vocabulary plus
    session addressing).  Ops for one session execute strictly in
    arrival order behind that session's lock; ops for different
    sessions interleave freely — a slow exact solve ships to a pool
    worker process and only its own session waits on it, so one
    tenant's hard component never blocks another's cache-hit repair.

Locking discipline (load-bearing): per-session ``asyncio.Lock``\\ s are
acquired only on the event-loop thread, and eviction runs only on the
event-loop thread as straight-line synchronous code — so "is this
session mid-op?" (``lock.locked()``) cannot race with freezing it.  The
registry itself takes a ``threading.Lock`` because ``open`` and op
execution run on executor threads.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from typing import Dict, List, Mapping, Optional, Tuple

from . import faults as _faults
from . import obs as _obs
from .core.fd import parse_fd_set
from .core.table import Table
from .protocol import (
    DAEMON_OPS,
    JOURNALED_OPS,
    ProtocolError,
    Request,
    apply_session_op,
    decode_line,
    encode,
)
from .session import RepairSession, SolutionCache
from .state import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    SPOOL_DIR,
    DiskSessionStore,
    MemorySessionStore,
    OpJournal,
    load_snapshot,
)

__all__ = ["RepairServer", "ServerConfig", "SessionManager"]


@dataclass
class ServerConfig:
    """Tenancy and lifecycle knobs for one daemon."""

    #: Total sessions open across all tenants (resident + frozen).
    max_sessions: int = 256
    #: Sessions kept live in memory; beyond this the least-recently-used
    #: unlocked sessions are frozen to their pickled state.
    max_resident: int = 64
    #: Sessions one tenant may hold open.
    max_tenant_sessions: int = 32
    #: Estimated bytes one tenant may hold (live + frozen); opens that
    #: would exceed it are refused.  ``None`` disables the bound.
    max_tenant_bytes: Optional[int] = 256 * 1024 * 1024
    #: Warm worker processes shared by every session (0 = solve
    #: in-process on the executor threads).
    workers: int = 1
    #: Shard host subprocesses shared by every session (>0 replaces the
    #: worker pool with a :class:`repro.shard.ShardedExecutor`: solves
    #: route by consistent hashing with retry/failover, and execution
    #: degrades to local when shards are exhausted).
    shards: int = 0
    #: Per-RPC deadline on the sharded executor.
    shard_timeout_s: float = 30.0
    #: RPC retries (capped exponential backoff) before a shard is
    #: presumed wedged and failed over.
    shard_retries: int = 2
    #: Bound on the shared content-addressed solution cache.
    cache_entries: Optional[int] = 200_000
    #: Executor threads op execution runs on (per-session sequencing
    #: means a session occupies at most one at a time).
    executor_threads: int = 8
    #: Seconds a session waits for one pool solve batch.
    pool_timeout: float = 600.0
    #: Optional per-solve timeout on the shared pool: an individual
    #: solve stuck past this long gets its worker terminated and rides
    #: the supervisor's retry-then-degrade path.
    solve_timeout_s: Optional[float] = None
    #: Directory for crash-safe state (op journal, snapshots, frozen
    #: session spool).  ``None`` keeps the daemon stateless: eviction
    #: freezes to memory and a crash loses all sessions.
    state_dir: Optional[str] = None
    #: Journal records between ``fsync`` calls (writes are flushed per
    #: record regardless, so only a machine crash can lose a batch).
    journal_fsync_every: int = 8
    #: Journal records between snapshot compactions.
    snapshot_every: int = 256
    #: Live journal size that triggers an early compaction (rotation
    #: when ``journal_keep`` > 0).  ``None`` leaves only the op-count
    #: trigger.
    journal_max_bytes: Optional[int] = None
    #: Rotated journal segments to retain (``journal.jsonl.1`` …
    #: ``.keep``); 0 keeps the historical truncate-on-compact.
    journal_keep: int = 0
    #: Calibrated difficulty cost constant (seconds per difficulty
    #: unit) applied to every session this daemon opens — how a
    #: ``fdrepair calibrate`` fit is deployed without monkeypatching.
    unit_cost_s: Optional[float] = None


@dataclass
class SessionEntry:
    """One registered session: live object or frozen snapshot.

    A frozen session's pickled state lives in the manager's
    :class:`~repro.state.SessionStore` under ``session_key``;
    ``frozen``/``frozen_bytes`` record that it is there and what it
    costs.  ``lock`` sequences the session's ops (acquired on the event
    loop only); ``last_used`` is the manager's logical clock reading
    for LRU eviction; ``bytes`` the current accounting estimate charged
    to ``tenant``.
    """

    tenant: str
    name: str
    session_key: str
    live: Optional[RepairSession] = None
    frozen: bool = False
    frozen_bytes: int = 0
    bytes: int = 0
    last_used: int = 0
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    @property
    def resident(self) -> bool:
        return self.live is not None


#: ``open`` payload keys forwarded to the ``RepairSession`` constructor.
_OPEN_OPTIONS = (
    "guarantee",
    "exact_threshold",
    "exact_budget_s",
    "node_limit",
    "unit_cost_s",
)


class SessionManager:
    """Registry, admission control, and eviction for daemon sessions.

    All sessions share one worker pool and one content-addressed
    solution cache; each gets its own pool mirror namespace (attached
    lazily on first solve, detached on close/eviction).  The manager
    never touches the event loop — :class:`RepairServer` layers
    concurrency on top.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        recorder: Optional["_obs.Recorder"] = None,
        faults: Optional["_faults.FaultPlan"] = None,
    ) -> None:
        self.config = config or ServerConfig()
        # A sink-less recorder aggregates op latencies and per-tenant
        # counters in memory so ``stats`` can always report them; pass a
        # sink-backed recorder (``--trace``) to also stream a JSONL log.
        self.recorder = recorder if recorder is not None else _obs.Recorder()
        self._faults = _faults.resolve(faults)
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, str], SessionEntry] = {}
        self._tenant_bytes: Dict[str, int] = {}
        self._tenant_evictions: Dict[str, int] = {}
        self._tenant_rehydrations: Dict[str, int] = {}
        self._clock = 0
        self.solutions = SolutionCache(
            self.config.cache_entries, recorder=self.recorder
        )
        self._pool = None
        self._pool_started = False
        self.evictions = 0
        self.rehydrations = 0
        self.ops = 0
        self.errors = 0
        self.snapshots = 0
        self.recovered_sessions = 0
        self.replayed_ops = 0
        self._closed = False
        self._replaying = False
        # Lifetime supervision totals from previous daemon incarnations
        # (restored from the snapshot; the current pool's counters are
        # the since-boot split).
        self._supervision_base: Dict[str, int] = {}
        # Crash-safe state: a disk-backed store + op journal when the
        # config names a state dir, PR-6 in-memory semantics otherwise.
        self._journal: Optional[OpJournal] = None
        self._snapshot_path: Optional[str] = None
        if self.config.state_dir:
            state_dir = self.config.state_dir
            os.makedirs(state_dir, exist_ok=True)
            self.store = DiskSessionStore(os.path.join(state_dir, SPOOL_DIR))
            self._snapshot_path = os.path.join(state_dir, SNAPSHOT_NAME)
            self._recover(os.path.join(state_dir, JOURNAL_NAME))
        else:
            self.store = MemorySessionStore()

    # -- pool lifecycle (owned here, never by a session) ---------------
    def _shared_pool(self):
        """The shared executor, started on first use: a
        :class:`repro.shard.ShardedExecutor` when ``shards`` > 0, the
        :class:`~repro.exec.PersistentWorkerPool` otherwise; ``None``
        when ``workers == 0`` or the platform cannot start either."""
        if self.config.shards <= 0 and self.config.workers <= 0:
            return None
        with self._lock:
            if not self._pool_started:
                self._pool_started = True
                if self.config.shards > 0:
                    from .shard import ShardedExecutor

                    pool = ShardedExecutor(
                        self.config.shards,
                        rpc_timeout_s=self.config.shard_timeout_s,
                        rpc_retries=self.config.shard_retries,
                        faults=self._faults,
                        recorder=self.recorder,
                    )
                else:
                    from .exec import PersistentWorkerPool

                    pool = PersistentWorkerPool(
                        self.config.workers,
                        solve_timeout_s=self.config.solve_timeout_s,
                        faults=self._faults,
                        recorder=self.recorder,
                    )
                if pool.start():
                    self._pool = pool
                else:
                    pool.close()
            return self._pool

    # -- admission -----------------------------------------------------
    def open(
        self, tenant: str, name: str, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        """Admit and create one session; returns its opening status."""
        return self.finish_open(self.admit(tenant, name), payload)

    def admit(self, tenant: str, name: str) -> SessionEntry:
        """Admission control: reserve a registry slot for a new session.

        Cheap and synchronous, so the server can run it on the event
        loop and take ``entry.lock`` before its first await — ops a
        client pipelines behind the ``open`` then queue on the lock
        instead of racing the construction.
        """
        cfg = self.config
        key = (tenant, name)
        with self._lock:
            if self._closed:
                raise ProtocolError("server is shutting down")
            if key in self._entries:
                raise ProtocolError(f"session {name!r} is already open")
            if len(self._entries) >= cfg.max_sessions:
                raise ProtocolError(
                    f"session limit reached ({cfg.max_sessions})"
                )
            held = sum(
                1 for (t, _n) in self._entries if t == tenant
            )
            if held >= cfg.max_tenant_sessions:
                raise ProtocolError(
                    f"tenant {tenant!r} session limit reached "
                    f"({cfg.max_tenant_sessions})"
                )
            if (
                cfg.max_tenant_bytes is not None
                and self._tenant_bytes.get(tenant, 0) >= cfg.max_tenant_bytes
            ):
                raise ProtocolError(
                    f"tenant {tenant!r} memory budget exhausted "
                    f"({cfg.max_tenant_bytes} bytes)"
                )
            # Reserve the slot before the (unlocked) construction below
            # so two concurrent opens of the same name cannot both pass
            # admission.
            entry = SessionEntry(
                tenant=tenant, name=name, session_key=f"{tenant}/{name}"
            )
            self._entries[key] = entry
        return entry

    def finish_open(
        self, entry: SessionEntry, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        """Build the session for an admitted entry (the slow half of
        ``open``); on failure the reserved slot is released."""
        try:
            session = self._build_session(entry, payload)
        except ProtocolError:
            with self._lock:
                self._entries.pop((entry.tenant, entry.name), None)
            raise
        with self._lock:
            entry.live = session
            self._touch(entry)
            self._account(entry)
        self._journal_op("open", entry.tenant, entry.name, payload)
        return {"opened": True, **session.status().as_dict()}

    def _build_session(
        self, entry: SessionEntry, payload: Mapping[str, object]
    ) -> RepairSession:
        schema = payload.get("schema")
        if not isinstance(schema, (list, tuple)) or not schema:
            raise ProtocolError("open needs a non-empty schema list")
        fds_text = payload.get("fds")
        if not isinstance(fds_text, str):
            raise ProtocolError("open needs an fds string")
        options = {
            k: payload[k] for k in _OPEN_OPTIONS if payload.get(k) is not None
        }
        options["pool_timeout"] = self.config.pool_timeout
        # The daemon's calibrated cost constant applies to every session
        # that does not pin its own (per-open payload wins — recovery
        # replays the payload, so the choice survives a restart).
        if self.config.unit_cost_s is not None:
            options.setdefault("unit_cost_s", self.config.unit_cost_s)
        try:
            fds = parse_fd_set(fds_text)
            table = Table(
                tuple(str(a) for a in schema), {}, name=entry.name
            )
            session = RepairSession(
                table,
                fds,
                pool=self._shared_pool(),
                session_key=entry.session_key,
                solutions=self.solutions,
                recorder=self.recorder,
                **options,
            )
            rows = payload.get("rows")
            if rows:
                session.append(
                    rows,
                    weights=payload.get("weights"),
                    ids=payload.get("ids"),
                    repair=False,
                )
        except ProtocolError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(str(exc)) from None
        return session

    # -- lookup & op execution ----------------------------------------
    def entry(self, tenant: str, name: str) -> SessionEntry:
        with self._lock:
            entry = self._entries.get((tenant, name))
        if entry is None:
            raise ProtocolError(
                f"no open session {name!r} for tenant {tenant!r}"
            )
        return entry

    def run_op(
        self, entry: SessionEntry, op: str, payload: Mapping[str, object]
    ) -> Dict[str, object]:
        """Execute one session op (rehydrating first when frozen).

        Caller must hold ``entry.lock`` (or be otherwise single-threaded
        for this entry); the registry lock is only taken for the brief
        bookkeeping moments, never across a solve.  Successful mutating
        ops are appended to the op journal *before* this returns (i.e.
        before the client sees the acknowledgement), so an acknowledged
        op is always recoverable.
        """
        self._faults.fire("server.op", op=op, tenant=entry.tenant,
                          session=entry.name)
        session = self._ensure_live(entry)
        self.ops += 1
        fields = apply_session_op(session, op, payload)
        self._journal_op(op, entry.tenant, entry.name, payload)
        with self._lock:
            self._touch(entry)
            self._account(entry)
        return fields

    def _journal_op(
        self, op: str, tenant: str, name: str, payload: Mapping[str, object]
    ) -> None:
        if (self._journal is None or self._replaying
                or op not in JOURNALED_OPS):
            return
        self._journal.append(op, tenant, name, payload)

    def _ensure_live(self, entry: SessionEntry) -> RepairSession:
        if entry.live is not None:
            return entry.live
        if not entry.frozen:
            # The entry was closed — or its ``open`` failed — while
            # this op waited on the session lock.
            raise ProtocolError(
                f"session {entry.name!r} for tenant {entry.tenant!r} "
                "is not open"
            )
        blob = self.store.get(entry.session_key)
        if blob is None:
            raise ProtocolError(
                f"frozen state for session {entry.name!r} of tenant "
                f"{entry.tenant!r} is missing from the session store"
            )
        state = pickle.loads(blob)
        session = RepairSession.restore(
            state,
            pool=self._shared_pool(),
            session_key=entry.session_key,
            solutions=self.solutions,
            recorder=self.recorder,
        )
        entry.live = session
        entry.frozen = False
        entry.frozen_bytes = 0
        self.store.pop(entry.session_key)
        with self._lock:
            self.rehydrations += 1
            self._tenant_rehydrations[entry.tenant] = (
                self._tenant_rehydrations.get(entry.tenant, 0) + 1
            )
            self._account(entry)
        if self.recorder.enabled:
            self.recorder.count("server.rehydrations", tenant=entry.tenant)
        return session

    def close(self, tenant: str, name: str) -> Dict[str, object]:
        entry = self.entry(tenant, name)
        with self._lock:
            self._entries.pop((tenant, name), None)
            self._charge(entry, 0)
        if entry.live is not None:
            entry.live.close()
            entry.live = None
        if entry.frozen:
            self.store.pop(entry.session_key)
            entry.frozen = False
            entry.frozen_bytes = 0
        self._journal_op("close", tenant, name, {})
        return {"closed": True}

    # -- accounting & eviction ----------------------------------------
    def _touch(self, entry: SessionEntry) -> None:
        self._clock += 1
        entry.last_used = self._clock

    def _account(self, entry: SessionEntry) -> None:
        if entry.live is not None:
            self._charge(entry, entry.live.approx_bytes())
        elif entry.frozen:
            self._charge(entry, entry.frozen_bytes)

    def _charge(self, entry: SessionEntry, new_bytes: int) -> None:
        delta = new_bytes - entry.bytes
        entry.bytes = new_bytes
        total = self._tenant_bytes.get(entry.tenant, 0) + delta
        if total > 0:
            self._tenant_bytes[entry.tenant] = total
        else:
            self._tenant_bytes.pop(entry.tenant, None)

    def resident_count(self) -> int:
        with self._lock:
            return sum(1 for e in self._entries.values() if e.resident)

    def evict_to_limit(self) -> int:
        """Freeze least-recently-used sessions down to ``max_resident``.

        Skips sessions whose lock is held (mid-op).  MUST run on the
        thread that acquires session locks (the event loop, for the
        server): the locked-check and the freeze are then atomic, so a
        session can never be frozen under an executing op.
        """
        evicted = 0
        while True:
            with self._lock:
                live = [
                    e
                    for e in self._entries.values()
                    if e.resident and not e.lock.locked()
                ]
                over = (
                    sum(1 for e in self._entries.values() if e.resident)
                    - self.config.max_resident
                )
                if over <= 0 or not live:
                    return evicted
                victim = min(live, key=lambda e: e.last_used)
            self._freeze(victim)
            evicted += 1

    def _freeze(self, entry: SessionEntry) -> None:
        session = entry.live
        if session is None:
            return
        blob = pickle.dumps(session.export_state(), protocol=4)
        session.close()  # detaches the pool mirror namespace
        entry.live = None
        entry.frozen = True
        entry.frozen_bytes = self.store.put(entry.session_key, blob)
        with self._lock:
            self.evictions += 1
            self._tenant_evictions[entry.tenant] = (
                self._tenant_evictions.get(entry.tenant, 0) + 1
            )
            self._account(entry)
        if self.recorder.enabled:
            self.recorder.count("server.evictions", tenant=entry.tenant)

    # -- crash safety: recovery & snapshot compaction -----------------
    def _recover(self, journal_path: str) -> None:
        """Rebuild daemon state from the snapshot plus the journal tail.

        Runs once, single-threaded, before the manager serves anything.
        Snapshot sessions come back *frozen* (rehydrated lazily on
        first op — restart cost stays flat in session count); journal
        records past the snapshot's sequence are re-executed through
        the ordinary op path, which is byte-identical to the original
        execution because sessions are deterministic.  Ends with a
        fresh compaction, so a crash loop never replays the same tail
        twice.
        """
        with self.recorder.span("server.recover"):
            snapshot = load_snapshot(self._snapshot_path)
            base_seq = 0
            if snapshot:
                base_seq = int(snapshot.get("journal_seq", 0))
                for item in snapshot.get("sessions", ()):
                    tenant = str(item["tenant"])
                    name = str(item["name"])
                    entry = SessionEntry(
                        tenant=tenant, name=name,
                        session_key=f"{tenant}/{name}",
                    )
                    entry.frozen = True
                    entry.frozen_bytes = self.store.put(
                        entry.session_key, item["blob"]
                    )
                    self._entries[(tenant, name)] = entry
                    with self._lock:
                        self._touch(entry)
                        self._account(entry)
                cached = snapshot.get("solutions")
                if cached:
                    # Warm the shared cache: the recovered daemon's
                    # first repairs are hits, not re-solves.
                    self.solutions.load_entries(cached)
                supervision = snapshot.get("supervision")
                if isinstance(supervision, dict):
                    self._supervision_base = {
                        str(k): int(v) for k, v in supervision.items()
                    }
            # The retained chain covers the snapshot-lost case: with no
            # (readable) snapshot, rotated segments replay too, oldest
            # first; with one, the base_seq filter below skips them.
            records, last_seq = OpJournal.load_chain(
                journal_path, self.config.journal_keep
            )
            self._journal = OpJournal(
                journal_path,
                fsync_every=self.config.journal_fsync_every,
                start_seq=max(base_seq, last_seq),
                faults=self._faults,
                max_bytes=self.config.journal_max_bytes,
                keep=self.config.journal_keep,
            )
            replayed = 0
            self._replaying = True
            try:
                for record in records:
                    if int(record.get("seq", 0)) <= base_seq:
                        continue
                    op = str(record.get("op"))
                    tenant = str(record.get("tenant") or "")
                    name = str(record.get("session") or "")
                    payload = record.get("payload") or {}
                    try:
                        if op == "open":
                            self.open(tenant, name, payload)
                        elif op == "close":
                            self.close(tenant, name)
                        else:
                            self.run_op(self.entry(tenant, name), op, payload)
                    except (ProtocolError, RuntimeError):
                        self.errors += 1
                    replayed += 1
            finally:
                self._replaying = False
            self.recovered_sessions = len(self._entries)
            self.replayed_ops = replayed
            if self.recorder.enabled:
                self.recorder.count(
                    "server.recovered_sessions", self.recovered_sessions
                )
                self.recorder.count("server.replayed_ops", replayed)
            if records or snapshot:
                self.compact(force=True)

    def maybe_compact(self) -> bool:
        """Snapshot-compact when the journal has grown enough.  Called
        from the event-loop thread between requests (same discipline as
        eviction): compaction proceeds only when no session is mid-op,
        so every ``export_state`` it pickles is quiescent."""
        journal = self._journal
        if journal is None:
            return False
        if (journal.appends_since_snapshot < self.config.snapshot_every
                and not (journal.oversized
                         and journal.appends_since_snapshot > 0)):
            return False
        return self.compact()

    def compact(self, force: bool = False) -> bool:
        """Write a full snapshot (every session's state + the shared
        solution cache) stamped with the journal sequence it covers,
        then truncate the journal.  Refuses while any session is mid-op
        unless *force* (callers forcing must guarantee quiescence:
        recovery and shutdown do)."""
        journal = self._journal
        if journal is None:
            return False
        with self._lock:
            entries = list(self._entries.values())
        if not force and any(e.lock.locked() for e in entries):
            return False
        sessions = []
        for entry in entries:
            if entry.live is not None:
                blob = pickle.dumps(entry.live.export_state(), protocol=4)
            else:
                blob = self.store.get(entry.session_key)
                if blob is None:
                    continue
            sessions.append(
                {"tenant": entry.tenant, "name": entry.name, "blob": blob}
            )
        snapshot = {
            "version": 1,
            "journal_seq": journal.seq,
            "sessions": sessions,
            "solutions": self.solutions.export_entries(),
            # Lifetime supervision totals (prior incarnations + this
            # boot so far) — restarts keep the full honesty record.
            "supervision": self.lifetime_supervision(),
        }
        journal.compact(self._snapshot_path, snapshot)
        self.snapshots += 1
        if self.recorder.enabled:
            self.recorder.count("server.snapshots")
        return True

    # -- introspection & shutdown -------------------------------------
    def lifetime_supervision(self) -> Dict[str, int]:
        """Supervision counters summed across daemon incarnations: the
        snapshot-restored base plus the current executor's since-boot
        counters."""
        totals = dict(self._supervision_base)
        if self._pool is not None:
            for key, value in self._pool.supervision_stats().items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals

    def stats(self) -> Dict[str, object]:
        with self._lock:
            entries = list(self._entries.values())
            tenant_bytes = dict(self._tenant_bytes)
            tenant_evictions = dict(self._tenant_evictions)
            tenant_rehydrations = dict(self._tenant_rehydrations)
        tenants = (
            {e.tenant for e in entries}
            | set(tenant_bytes)
            | set(tenant_evictions)
            | set(tenant_rehydrations)
        )
        tenant_sessions: Dict[str, Dict[str, int]] = {}
        for tenant in sorted(tenants):
            mine = [e for e in entries if e.tenant == tenant]
            tenant_sessions[tenant] = {
                "resident": sum(1 for e in mine if e.resident),
                "frozen": sum(1 for e in mine if not e.resident),
                "bytes": tenant_bytes.get(tenant, 0),
                "evictions": tenant_evictions.get(tenant, 0),
                "rehydrations": tenant_rehydrations.get(tenant, 0),
            }
        out: Dict[str, object] = {
            "sessions": len(entries),
            "resident": sum(1 for e in entries if e.resident),
            "frozen": sum(1 for e in entries if not e.resident),
            "tenants": len({e.tenant for e in entries}),
            "tenant_bytes": tenant_bytes,
            "tenant_sessions": tenant_sessions,
            "evictions": self.evictions,
            "rehydrations": self.rehydrations,
            "ops": self.ops,
            "errors": self.errors,
            "cache_entries": len(self.solutions),
            "cache_hits": self.solutions.hits,
            "cache_misses": self.solutions.misses,
            "cache_evictions": self.solutions.evictions,
            "pool_alive": bool(self._pool is not None and self._pool.alive),
            "pool_workers": (
                self._pool.worker_count if self._pool is not None else 0
            ),
            "snapshots": self.snapshots,
            "recovered_sessions": self.recovered_sessions,
            "replayed_ops": self.replayed_ops,
        }
        if self._pool is not None:
            out["pool_supervision"] = self._pool.supervision_stats()
            out["pool_kind"] = getattr(self._pool, "executor_kind", "pool")
            live_shards = getattr(self._pool, "live_shards", None)
            if callable(live_shards):
                out["shards"] = {
                    "count": self._pool.shard_count,
                    "live": live_shards(),
                }
        if self._supervision_base or self._pool is not None:
            out["pool_supervision_lifetime"] = self.lifetime_supervision()
        journal = self._journal
        if journal is not None:
            out["journal"] = {
                "path": journal.path,
                "seq": journal.seq,
                "appends": journal.appends,
                "fsyncs": journal.fsyncs,
                "since_snapshot": journal.appends_since_snapshot,
                "bytes": journal.bytes,
                "rotations": journal.rotations,
                "keep": journal.keep,
                "max_bytes": journal.max_bytes,
            }
        if self.recorder.enabled:
            out["op_latency_s"] = {
                name: hist
                for name, hist in self.recorder.histograms().items()
                if name.startswith("op.")
            }
            out["tenant_ops"] = self.recorder.tag_totals(
                "server.ops", "tenant"
            )
        return out

    def shutdown(self) -> None:
        """Close every session and the shared pool; idempotent.

        With a state dir, shutdown first takes a final snapshot (the
        caller has drained in-flight ops, so every session is
        quiescent) — a restarted daemon then recovers instantly from
        the snapshot with an empty journal tail.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._journal is not None:
            self.compact(force=True)
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            self._tenant_bytes.clear()
        for entry in entries:
            if entry.live is not None:
                # The pool is about to close wholesale; skip per-session
                # namespace teardown chatter.
                entry.live._pool = None
                entry.live.close()
                entry.live = None
            entry.frozen = False
        self.store.clear()
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.close()
        if self._journal is not None:
            self._journal.close()
        self.recorder.close()


class RepairServer:
    """Asyncio front end multiplexing JSONL repair traffic onto a
    :class:`SessionManager`.

    One task per request line; a per-session lock sequences each
    session's ops while different sessions proceed concurrently on the
    executor (and, for solver work, on the shared pool's worker
    processes).  Responses may therefore interleave across sessions —
    clients correlate by ``session``/``seq``, which every response
    echoes.
    """

    def __init__(self, manager: Optional[SessionManager] = None) -> None:
        self.manager = manager or SessionManager()
        self._executor = ThreadPoolExecutor(
            max_workers=self.manager.config.executor_threads,
            thread_name_prefix="repro-serve",
        )
        self._shutdown = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: set = set()

    # -- shutdown ------------------------------------------------------
    def request_shutdown(self) -> None:
        """Begin a graceful drain: stop accepting new request lines,
        let in-flight ops finish, flush the journal/trace, exit clean.
        Safe to call from a signal handler on the event loop."""
        self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to :meth:`request_shutdown` so a
        supervisor's stop (or Ctrl-C) drains instead of killing.
        Falls back silently where the loop doesn't support signal
        handlers (non-main thread, Windows)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                pass

    # -- request handling ---------------------------------------------
    async def handle_line(self, line: str, write) -> None:
        """Parse and execute one request line, sending one response via
        ``write`` (an async callable taking the response dict)."""
        obj: object = None
        try:
            obj = decode_line(line)
            req = Request(obj)
        except ProtocolError as exc:
            self.manager.errors += 1
            error = {"ok": False, "error": str(exc)}
            if isinstance(obj, dict):
                # Echo whatever envelope the client did send, so it can
                # still correlate the failure by seq.
                for field in ("op", "tenant", "session", "seq"):
                    value = obj.get(field)
                    if isinstance(value, (str, int)):
                        error[field] = value
            await write(error)
            return
        rec = self.manager.recorder
        start = _perf_counter()
        ok = True
        try:
            if req.op in DAEMON_OPS:
                await write(req.reply(**self._daemon_op(req)))
                return
            if req.op == "open":
                # Admission is synchronous, and entry.lock is free when
                # it returns, so the ``async with`` takes the lock on
                # its no-yield fast path: ops pipelined behind this open
                # queue on the lock until construction finishes.
                entry = self.manager.admit(req.tenant, req.session)
                async with entry.lock:
                    loop = asyncio.get_running_loop()
                    fields = await loop.run_in_executor(
                        self._executor,
                        self.manager.finish_open,
                        entry,
                        req.payload,
                    )
                self.manager.evict_to_limit()
                self.manager.maybe_compact()
                await write(req.reply(**fields))
                return
            entry = self.manager.entry(req.tenant, req.session)
            async with entry.lock:
                if req.op == "close":
                    fields = self.manager.close(req.tenant, req.session)
                else:
                    loop = asyncio.get_running_loop()
                    fields = await loop.run_in_executor(
                        self._executor,
                        self.manager.run_op,
                        entry,
                        req.op,
                        req.payload,
                    )
            self.manager.evict_to_limit()
            self.manager.maybe_compact()
            await write(req.reply(**fields))
        except ProtocolError as exc:
            ok = False
            self.manager.errors += 1
            await write(req.error(str(exc)))
        except RuntimeError as exc:
            # Pool breakage surfaces here when serial fallback also
            # failed; the session stays open, the request fails.
            ok = False
            self.manager.errors += 1
            await write(req.error(f"internal: {exc}"))
        finally:
            if rec.enabled:
                dur = _perf_counter() - start
                rec.observe(f"op.{req.op}", dur)
                if req.tenant:
                    rec.count("server.ops", tenant=req.tenant)
                else:
                    rec.count("server.ops")
                rec.record(
                    "op",
                    op=req.op,
                    tenant=req.tenant,
                    session=req.session,
                    dur_s=round(dur, 6),
                    ok=ok,
                )

    def _daemon_op(self, req: Request) -> Dict[str, object]:
        if req.op == "ping":
            return {"pong": True}
        if req.op == "stats":
            return self.manager.stats()
        # shutdown: acknowledge first, stop accepting after.
        self._shutdown.set()
        return {"stopping": True}

    # -- transports ----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        wlock = asyncio.Lock()

        async def write(obj) -> None:
            async with wlock:
                writer.write(encode(obj).encode("utf-8"))
                await writer.drain()

        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
        tasks: List[asyncio.Task] = []
        stop = asyncio.ensure_future(self._shutdown.wait())
        try:
            while not self._shutdown.is_set():
                read = asyncio.ensure_future(reader.readline())
                # Race the read against shutdown so a drain (signal or
                # ``shutdown`` op) interrupts an idle connection instead
                # of waiting for its next line.
                await asyncio.wait(
                    {read, stop}, return_when=asyncio.FIRST_COMPLETED
                )
                if not read.done():
                    read.cancel()
                    try:
                        await read
                    except (asyncio.CancelledError, ConnectionError,
                            asyncio.IncompleteReadError):
                        pass
                    break
                try:
                    line = read.result()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                tasks.append(
                    asyncio.create_task(self.handle_line(text, write))
                )
                tasks = [t for t in tasks if not t.done()]
            if tasks:
                # Drain: in-flight ops finish and their responses ship
                # before the connection closes.
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            stop.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if me is not None:
                self._conn_tasks.discard(me)

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> int:
        """Start listening; returns the actual bound port (useful with
        ``port=0``).  Run :meth:`wait_closed` to block until shutdown."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` op or signal arrives, then drain:
        stop accepting, finish in-flight connections, flush state."""
        await self._shutdown.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Connection handlers observe the shutdown event, finish their
        # in-flight ops, and deregister themselves; wait for all of
        # them rather than trusting the listener's close semantics.
        pending = [t for t in self._conn_tasks if not t.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await self.aclose()

    async def serve_stdio(self) -> None:
        """Serve the protocol over stdin/stdout until EOF or shutdown.

        Lines are read by a *daemon* thread feeding an asyncio queue
        (portable — no pipe transports — and a drain never hangs on a
        thread blocked in ``readline``); responses are written
        synchronously under a lock; per-session concurrency works
        exactly as over TCP.
        """
        loop = asyncio.get_running_loop()
        wlock = asyncio.Lock()
        inbox: "asyncio.Queue[Optional[str]]" = asyncio.Queue()

        def _reader() -> None:
            while True:
                line = sys.stdin.readline()
                loop.call_soon_threadsafe(
                    inbox.put_nowait, line if line else None
                )
                if not line:
                    break

        threading.Thread(
            target=_reader, name="repro-stdin", daemon=True
        ).start()

        async def write(obj) -> None:
            async with wlock:
                sys.stdout.write(encode(obj))
                sys.stdout.flush()

        tasks: List[asyncio.Task] = []
        stop = asyncio.ensure_future(self._shutdown.wait())
        while not self._shutdown.is_set():
            get = asyncio.ensure_future(inbox.get())
            await asyncio.wait(
                {get, stop}, return_when=asyncio.FIRST_COMPLETED
            )
            if not get.done():
                get.cancel()
                break
            line = get.result()
            if line is None:
                break
            text = line.strip()
            if not text:
                continue
            tasks.append(asyncio.create_task(self.handle_line(text, write)))
            tasks = [t for t in tasks if not t.done()]
        stop.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await self.aclose()

    async def aclose(self) -> None:
        """Drain the executor and close every session and the pool."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.manager.shutdown)
        self._executor.shutdown(wait=True)
