"""High-level cleaning pipeline: detect → estimate → repair → report.

The paper's introduction motivates optimal repairs twice: (1) fully
automated cleaning, where the optimal repair *is* the cleaned instance,
and (2) human-in-the-loop cleaning, where the optimal repair *cost*
serves as an educated estimate of how dirty the database is and how much
effort completion will take.  This module packages both workflows behind
one call.

:func:`assess` produces a :class:`DirtinessReport` without committing to
a repair: conflict statistics plus a *bracket* on the optimal repair
cost — an admissible lower bound (greedy matching over the conflict
graph: tuple-disjoint conflicting pairs each force one deletion) and the
2-approximation upper bound of Proposition 3.3, so the true optimum is
provably inside ``[lower, upper]`` with ``upper ≤ 2·optimum``.

:func:`clean` runs the full pipeline and returns the repaired table with
the guarantee achieved, choosing deletions or updates and exact or
approximate computation according to the requested policy and the
dichotomy verdict for Δ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .core.approx import approx_s_repair
from .core.conflict_index import ConflictIndex
from .core.dichotomy import DichotomyResult, classify
from .core.fd import FDSet
from .core.srepair import SRepairResult, optimal_s_repair
from .core.table import Table
from .core.urepair import URepairResult, u_repair

__all__ = ["DirtinessReport", "CleaningResult", "assess", "clean"]


@dataclass(frozen=True)
class DirtinessReport:
    """Conflict statistics and a provable bracket on the repair cost.

    ``lower_bound ≤ optimal S-repair distance ≤ upper_bound`` always
    holds, and ``upper_bound ≤ 2 × optimum`` (Proposition 3.3).  A table
    is consistent iff ``conflict_count == 0`` iff the bracket is [0, 0].
    """

    total_tuples: int
    total_weight: float
    conflict_count: int
    conflicting_tuples: int
    lower_bound: float
    upper_bound: float
    complexity: str
    dichotomy: DichotomyResult

    @property
    def consistent(self) -> bool:
        return self.conflict_count == 0

    @property
    def dirtiness_fraction(self) -> float:
        """Upper-bound estimate of the weight fraction needing change."""
        if self.total_weight == 0:
            return 0.0
        return self.upper_bound / self.total_weight

    @property
    def bracket_is_tight(self) -> bool:
        """True iff lower and upper bound coincide — the polynomial
        assessment then *certifies* the optimal repair cost without
        solving the (possibly APX-complete) problem exactly.  Happens
        surprisingly often on real dirtiness patterns, where conflicts
        form disjoint clusters."""
        return self.lower_bound == self.upper_bound

    def summary(self) -> str:
        lines = [
            f"tuples: {self.total_tuples} (total weight {self.total_weight:g})",
            f"conflicting pairs: {self.conflict_count} "
            f"across {self.conflicting_tuples} tuples",
            f"optimal deletion cost bracket: "
            f"[{self.lower_bound:g}, {self.upper_bound:g}]",
            f"estimated dirtiness: ≤ {100 * self.dirtiness_fraction:.1f}% "
            "of total weight",
            f"optimal S-repair complexity for Δ: {self.complexity}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class CleaningResult:
    """Outcome of :func:`clean`: the repaired table plus provenance."""

    cleaned: Table
    report: DirtinessReport
    strategy: str
    distance: float
    optimal: bool
    ratio_bound: float
    method: str


def assess(
    table: Table, fds: FDSet, index: Optional[ConflictIndex] = None
) -> DirtinessReport:
    """Detect conflicts and bracket the optimal repair cost (no repair).

    Polynomial regardless of Δ — the bracket comes from the matching
    lower bound and the Bar-Yehuda–Even upper bound, not from solving the
    (possibly APX-complete) exact problem.  All three readings (conflict
    statistics, lower bound, upper bound) are served by the table's
    cached :class:`ConflictIndex` — or the prebuilt one passed in — so
    assessment costs one bucketing pass, shared with any subsequent
    repair call on the same table.
    """
    if index is None:
        index = table.conflict_index(fds)
    else:
        index.ensure_for(fds, table)

    # Matching lower bound: tuple-disjoint conflicting pairs each force
    # one deletion of at least the lighter tuple.
    lower = index.matching_lower_bound()

    # Upper bound: Bar-Yehuda–Even cover on the same index (Prop 3.3).
    if index.num_edges:
        from .graphs.vertex_cover import bar_yehuda_even, maximalize_independent_set

        cover = bar_yehuda_even(index)
        kept = {tid for tid in table.ids() if tid not in cover}
        kept = maximalize_independent_set(index, kept)
        upper = table.total_weight() - table.total_weight(kept)
    else:
        upper = 0.0

    verdict = classify(fds)
    return DirtinessReport(
        total_tuples=len(table),
        total_weight=table.total_weight(),
        conflict_count=index.num_edges,
        conflicting_tuples=len(index.conflicting_tuples()),
        lower_bound=lower,
        upper_bound=upper,
        complexity=verdict.complexity,
        dichotomy=verdict,
    )


def clean(
    table: Table,
    fds: FDSet,
    strategy: str = "deletions",
    guarantee: str = "best",
    index: Optional[ConflictIndex] = None,
) -> CleaningResult:
    """Repair *table* end to end.

    Parameters
    ----------
    strategy:
        ``"deletions"`` (S-repair) or ``"updates"`` (U-repair).
    guarantee:
        * ``"best"`` — optimal when the dichotomy (or instance size)
          permits, bounded approximation otherwise;
        * ``"optimal"`` — insist on a provably optimal repair (may be
          exponential on the hard side; raises on infeasible U cases);
        * ``"fast"`` — polynomial approximation regardless of Δ.
    index:
        Optional prebuilt :class:`ConflictIndex` for ``(table, fds)``,
        e.g. when batch-repairing one table under several strategies.
        Built (and cached on the table) otherwise; assessment and the
        repair step share it either way.
    """
    if strategy not in ("deletions", "updates"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if guarantee not in ("best", "optimal", "fast"):
        raise ValueError(f"unknown guarantee {guarantee!r}")
    if index is None:
        index = table.conflict_index(fds)
    else:
        index.ensure_for(fds, table)
    report = assess(table, fds, index=index)

    if strategy == "deletions":
        if guarantee == "fast" or (
            guarantee == "best" and not report.dichotomy.tractable and len(table) > 64
        ):
            result = approx_s_repair(table, fds, index=index)
        else:
            result = optimal_s_repair(table, fds, index=index)
        return CleaningResult(
            cleaned=result.repair,
            report=report,
            strategy=strategy,
            distance=result.distance,
            optimal=result.optimal,
            ratio_bound=result.ratio_bound,
            method=result.method,
        )

    # strategy == "updates"
    if guarantee == "fast":
        from .core.approx import approx_u_repair

        u_result: URepairResult = approx_u_repair(table, fds, index=index)
    elif guarantee == "optimal":
        from .core.urepair import optimal_u_repair

        u_result = optimal_u_repair(table, fds, index=index)
    else:
        u_result = u_repair(table, fds, index=index)
    return CleaningResult(
        cleaned=u_result.update,
        report=report,
        strategy=strategy,
        distance=u_result.distance,
        optimal=u_result.optimal,
        ratio_bound=u_result.ratio_bound,
        method=u_result.method,
    )
