"""High-level cleaning pipeline: detect → estimate → repair → report.

The paper's introduction motivates optimal repairs twice: (1) fully
automated cleaning, where the optimal repair *is* the cleaned instance,
and (2) human-in-the-loop cleaning, where the optimal repair *cost*
serves as an educated estimate of how dirty the database is and how much
effort completion will take.  This module packages both workflows behind
one call.

:func:`assess` produces a :class:`DirtinessReport` without committing to
a repair: conflict statistics plus a *bracket* on the optimal repair
cost — an admissible lower bound (greedy matching over the conflict
graph: tuple-disjoint conflicting pairs each force one deletion) and the
2-approximation upper bound of Proposition 3.3, so the true optimum is
provably inside ``[lower, upper]`` with ``upper ≤ 2·optimum``.

:func:`clean` runs the full pipeline and returns the repaired table with
the guarantee achieved, choosing deletions or updates and exact or
approximate computation according to the requested policy and the
dichotomy verdict for Δ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from . import obs as _obs
from .core.approx import approx_s_repair
from .core.conflict_index import ConflictIndex
from .graphs.vertex_cover import ExactBudgetExceeded
from .core.decompose import (
    EXACT_COMPONENT_THRESHOLD,
    decompose,
    polynomial_bracket,
    resolve_plan_defaults,
)
from .core.dichotomy import DichotomyResult, classify
from .core.fd import FDSet
from .core.srepair import SRepairResult, optimal_s_repair
from .core.table import Table
from .core.urepair import URepairResult, u_repair

__all__ = [
    "ComponentAssessment",
    "DirtinessReport",
    "CleaningResult",
    "assess",
    "clean",
]


@dataclass(frozen=True)
class ComponentAssessment:
    """Per-component detail row of a :func:`assess` run (``detailed=True``).

    ``method`` is the *planned* bracket computation (``"exact"`` — branch
    & bound attempted — or ``"approx"``), ``bracket_source`` where the
    reported lower bound actually came from: ``"exact"`` when the
    component optimum is certified (tight polynomial bracket or a
    completed exact solve), ``"lp"`` when the half-integral LP relaxation
    beat the matching bound, ``"matching"`` otherwise.
    ``difficulty``/``predicted_s`` are the scheduler's cost-model
    outputs (``None`` when no global budget was set — the legacy path
    computes no features).
    """

    ordinal: int
    size: int
    edges: int
    method: str
    difficulty: Optional[float]
    predicted_s: Optional[float]
    downgraded: bool
    lower_bound: float
    upper_bound: float
    bracket_source: str


@dataclass(frozen=True)
class DirtinessReport:
    """Conflict statistics and a provable bracket on the repair cost.

    ``lower_bound ≤ optimal S-repair distance ≤ upper_bound`` always
    holds, and ``upper_bound ≤ 2 × optimum`` (Proposition 3.3).  A table
    is consistent iff ``conflict_count == 0`` iff the bracket is [0, 0].

    On the (default) decomposed assessment the bracket is the *sum of
    per-component brackets*: components at or below
    :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD` tuples
    contribute their exact optimal deletion cost (lower = upper), larger
    ones their matching/Bar-Yehuda–Even bracket.  Per-component matching
    and BYE sums coincide with the global bounds (both computations are
    component-local), so the decomposed bracket is never looser and is
    strictly tighter whenever any component was solved exactly —
    ``exact_components`` counts those.
    """

    total_tuples: int
    total_weight: float
    conflict_count: int
    conflicting_tuples: int
    lower_bound: float
    upper_bound: float
    complexity: str
    dichotomy: DichotomyResult
    component_count: int = 0
    largest_component: int = 0
    exact_components: int = 0
    component_details: Optional[tuple] = None

    @property
    def consistent(self) -> bool:
        return self.conflict_count == 0

    @property
    def dirtiness_fraction(self) -> float:
        """Upper-bound estimate of the weight fraction needing change."""
        if self.total_weight == 0:
            return 0.0
        return self.upper_bound / self.total_weight

    @property
    def bracket_is_tight(self) -> bool:
        """True iff lower and upper bound coincide — the polynomial
        assessment then *certifies* the optimal repair cost without
        solving the (possibly APX-complete) problem exactly.  Happens
        surprisingly often on real dirtiness patterns, where conflicts
        form disjoint clusters."""
        return self.lower_bound == self.upper_bound

    def summary(self) -> str:
        lines = [
            f"tuples: {self.total_tuples} (total weight {self.total_weight:g})",
            f"conflicting pairs: {self.conflict_count} "
            f"across {self.conflicting_tuples} tuples",
            f"conflict components: {self.component_count}"
            + (
                f" (largest {self.largest_component} tuples, "
                f"{self.exact_components} bracketed exactly)"
                if self.component_count
                else ""
            ),
            f"optimal deletion cost bracket: "
            f"[{self.lower_bound:g}, {self.upper_bound:g}]"
            + (" (tight)" if self.bracket_is_tight and self.conflict_count else ""),
            f"estimated dirtiness: ≤ {100 * self.dirtiness_fraction:.1f}% "
            "of total weight",
            f"optimal S-repair complexity for Δ: {self.complexity}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class CleaningResult:
    """Outcome of :func:`clean`: the repaired table plus provenance.

    ``ratio_bound`` is *instance-specific* on the decomposed path: 1.0
    whenever every component was solved exactly — even for an FD set
    that is APX-complete in general — and the proven per-component
    maximum otherwise.  ``method_counts`` records the portfolio mix
    (method → number of components it handled) and ``component_count``
    how many conflict components the instance decomposed into (``None``
    on the global path).
    """

    cleaned: Table
    report: DirtinessReport
    strategy: str
    distance: float
    optimal: bool
    ratio_bound: float
    method: str
    method_counts: Optional[Mapping[str, int]] = None
    component_count: Optional[int] = None


def _bracket_component(index, table: Table) -> tuple:
    """Polynomial [matching, Bar-Yehuda–Even] bracket of one (sub-)index.

    Kept as an alias of :func:`repro.core.decompose.polynomial_bracket`
    (where the body moved when the bracket became a difficulty feature)
    for the streaming session's bracket refresh."""
    return polynomial_bracket(index, table)


def assess(
    table: Table,
    fds: FDSet,
    index: Optional[ConflictIndex] = None,
    decomposed: bool = True,
    exact_threshold: Optional[int] = None,
    exact_budget_s: Optional[float] = None,
    per_component_budget_s: Optional[float] = None,
    unit_cost_s: Optional[float] = None,
    detailed: bool = False,
    recorder=None,
) -> DirtinessReport:
    """Detect conflicts and bracket the optimal repair cost (no repair).

    The bracket is the sum of per-component brackets over the conflict
    graph's connected components.  Which components are bracketed
    **exactly** is decided by the difficulty scheduler
    (:func:`repro.core.decompose.plan_schedule`): without a global
    budget, every component of at most *exact_threshold* tuples (default
    :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD`) gets a
    branch & bound attempt — empirically instantaneous at that size —
    each capped by *per_component_budget_s*; with *exact_budget_s* set,
    components are ranked by predicted difficulty and granted exact
    attempts easiest-first while the predicted spend fits the **global**
    budget, so the same wall-clock buys the most certified components.
    A component left approximate contributes its matching lower bound —
    tightened to the half-integral LP relaxation bound when that is
    larger (strictly tighter on non-bipartite components) — and the
    Bar-Yehuda–Even upper bound (Proposition 3.3).  The result is never
    looser than the global bracket (all bounds are component-local
    computations) and strictly tighter whenever any component is
    bracketed exactly.  With ``decomposed=False`` the historical single
    global bracket is computed, which is also the fallback guaranteeing
    polynomial time on adversarial components.  An exact bracket whose
    branch & bound outruns its wall-clock slice keeps its polynomial
    bounds instead (and does not count as exact).  ``detailed=True``
    additionally fills ``component_details`` with one
    :class:`ComponentAssessment` per component.  All readings are
    served by the table's cached :class:`ConflictIndex` — or the
    prebuilt one passed in — so assessment costs one bucketing pass,
    shared with any subsequent repair call on the same table.

    An enabled *recorder* (:mod:`repro.obs`) receives a
    ``pipeline.assess`` root span with ``phase.index`` /
    ``phase.decompose`` / ``phase.plan`` / ``phase.solve`` children (the
    solve phase covers the bracket loop — exact attempts and LP
    tightening).  The default no-op recorder costs a handful of empty
    context managers per call.
    """
    rec = _obs.resolve(recorder)
    with rec.span("pipeline.assess", decomposed=decomposed):
        with rec.span("phase.index"):
            if index is None:
                index = table.conflict_index(fds)
            else:
                index.ensure_for(fds, table)

        verdict = classify(fds)
        defaults = resolve_plan_defaults(
            exact_threshold, None, exact_budget_s, per_component_budget_s,
            unit_cost_s,
        )
        threshold = defaults.threshold

        component_count = 0
        largest = 0
        exact_components = 0
        details = [] if detailed else None
        if decomposed and index.num_edges:
            lower, upper, component_count, largest, exact_components = (
                _assess_decomposed_bracket(
                    table, fds, index, defaults, threshold, details, rec
                )
            )
        else:
            lower, upper = _bracket_component(index, table)
            if index.num_edges:
                components = index.components()
                component_count = len(components)
                largest = max(len(c) for c in components)

        return DirtinessReport(
            total_tuples=len(table),
            total_weight=table.total_weight(),
            conflict_count=index.num_edges,
            conflicting_tuples=len(index.conflicting_tuples()),
            lower_bound=lower,
            upper_bound=upper,
            complexity=verdict.complexity,
            dichotomy=verdict,
            component_count=component_count,
            largest_component=largest,
            exact_components=exact_components,
            component_details=tuple(details) if details is not None else None,
        )


def _assess_decomposed_bracket(
    table: Table,
    fds: FDSet,
    index: ConflictIndex,
    defaults,
    threshold: int,
    details,
    rec,
):
    """The decomposed bracket loop of :func:`assess`: decompose, plan,
    then bracket each component (exact attempt or matching/LP/BYE),
    filling *details* rows in place when requested.  Returns
    ``(lower, upper, component_count, largest, exact_components)``."""
    from .core.exact import ExactBudgetExceeded, exact_cover_of_index

    with rec.span("phase.decompose"):
        decomp = decompose(table, fds, index)
    # Assessment brackets every component via vertex cover regardless of
    # the dichotomy, so the schedule is planned on the hard side
    # (tractable=False: exact-vs-approx, never dichotomy).
    with rec.span("phase.plan"):
        plans = decomp.plan_schedule(
            False,
            "best",
            threshold,
            defaults.exact_budget_s,
            defaults.per_component_budget_s,
            defaults.node_limit,
            defaults.unit_cost_s,
        )
    exact_components = 0
    lower = upper = 0.0
    with rec.span("phase.solve"):
        for ordinal, (component, plan) in enumerate(
            zip(decomp.components, plans)
        ):
            # The cheap polynomial bracket first: when it is already
            # tight the component optimum is certified and the branch &
            # bound has nothing to add.  The global scheduler already
            # bracketed eligible components as a difficulty feature.
            if plan.features is not None:
                c_lower, c_upper = plan.features.matching, plan.features.upper
            else:
                c_lower, c_upper = polynomial_bracket(
                    component.index, component.table
                )
            source = "matching"
            if c_lower == c_upper:
                exact_components += 1
                source = "exact"
            elif plan.method == "exact":
                try:
                    cover = exact_cover_of_index(
                        component.index, node_limit=defaults.node_limit,
                        budget_s=plan.budget_s,
                    )
                except ExactBudgetExceeded:
                    pass  # budget hit: the polynomial bracket stands
                else:
                    c_lower = c_upper = component.table.total_weight(cover)
                    exact_components += 1
                    source = "exact"
            if (
                source == "matching"
                and plan.method == "approx"
                and (plan.downgraded or component.size > threshold)
            ):
                lp = component.index.lp_lower_bound()
                if lp is not None and lp > c_lower:
                    c_lower = lp
                    source = "lp"
            lower += c_lower
            upper += c_upper
            if details is not None:
                details.append(ComponentAssessment(
                    ordinal=ordinal,
                    size=component.size,
                    edges=component.index.num_edges,
                    method=plan.method,
                    difficulty=plan.difficulty,
                    predicted_s=plan.predicted_s,
                    downgraded=plan.downgraded,
                    lower_bound=c_lower,
                    upper_bound=c_upper,
                    bracket_source=source,
                ))
    return (
        lower,
        upper,
        decomp.component_count,
        decomp.largest_component,
        exact_components,
    )


def _decomposed_outcome(
    decomp,
    verdict: DichotomyResult,
    methods,
    kept_lists,
    parallel: Optional[int],
    lower_bounds=None,
) -> CleaningResult:
    """Assemble the :class:`CleaningResult` (report included) of a
    decomposed S-repair from its per-component kept sets.

    Shared by :func:`_clean_deletions_decomposed` and the streaming
    :class:`repro.session.RepairSession`: both feed per-component solves
    — freshly computed or cache-served — through the same assembly, so a
    session result is byte-identical to a from-scratch ``clean``.

    *lower_bounds*, when given, supplies a precomputed lower bound per
    component — the matching bound, or ``max(matching, LP)`` for
    components that qualify under :func:`_lp_qualifies` (``None``
    entries fall back to recomputing the matching bound from the
    component index); every bound involved is a pure function of the
    component, so cached and recomputed values coincide exactly.
    """
    from .exec import assemble_s_result

    table = decomp.table
    lower = upper = 0.0
    exact_components = 0
    for i, (component, method, kept) in enumerate(
        zip(decomp.components, methods, kept_lists)
    ):
        deleted = component.table.total_weight() - component.table.total_weight(kept)
        if method in ("dichotomy", "exact"):
            lower += deleted
            upper += deleted
            exact_components += 1
        else:
            # The solver already ran BYE + maximalisation for this
            # component: its deleted weight *is* the Proposition 3.3
            # upper bound; only the matching lower bound is left.
            bound = lower_bounds[i] if lower_bounds is not None else None
            if bound is None:
                bound = component.index.matching_lower_bound()
            lower += bound
            upper += deleted
    report = DirtinessReport(
        total_tuples=len(table),
        total_weight=table.total_weight(),
        conflict_count=decomp.index.num_edges,
        conflicting_tuples=decomp.conflicting_tuple_count(),
        lower_bound=lower,
        upper_bound=upper,
        complexity=verdict.complexity,
        dichotomy=verdict,
        component_count=decomp.component_count,
        largest_component=decomp.largest_component,
        exact_components=exact_components,
    )
    result = assemble_s_result(decomp, methods, kept_lists, parallel)
    return CleaningResult(
        cleaned=result.repair,
        report=report,
        strategy="deletions",
        distance=result.distance,
        optimal=result.optimal,
        ratio_bound=result.ratio_bound,
        method=result.method,
        method_counts=result.method_counts,
        component_count=result.component_count,
    )


def _lp_qualifies(plan, size: int, threshold: int, guarantee: str) -> bool:
    """Whether a component's lower bound should be tightened by the
    half-integral LP relaxation: only components the *plan* leaves
    approximate (too large for the threshold, or downgraded by the
    global scheduler) under a bound-seeking guarantee.  A component
    whose exact solve fell back at *run* time keeps the matching bound —
    the fallback is wall-clock dependent, and the bound must stay a pure
    function of the plan for serial/pool and session/clean byte-identity.
    The rule lives here so the streaming session and the one-shot
    pipeline can never disagree on it."""
    return (
        guarantee != "fast"
        and plan.method == "approx"
        and (plan.downgraded or size > threshold)
    )


def _clean_deletions_decomposed(
    table: Table,
    fds: FDSet,
    guarantee: str,
    index: ConflictIndex,
    parallel: Optional[int],
    exact_threshold: int = EXACT_COMPONENT_THRESHOLD,
    exact_budget_s: Optional[float] = None,
    per_component_budget_s: Optional[float] = None,
    unit_cost_s: Optional[float] = None,
    recorder=None,
    executor=None,
) -> CleaningResult:
    """The decomposed S-repair pipeline: decompose once, schedule the
    portfolio (:func:`repro.core.decompose.plan_schedule` — difficulty-
    ranked under a global *exact_budget_s*, the historical size rule
    otherwise), solve each component by its plan, and derive the
    dirtiness report from the same per-component solutions.  The
    *effective* methods come back from the solve — an exact component
    that outran its wall-clock slice re-solved approximately — so report
    and label describe what ran.  Approximated components that qualify
    (:func:`_lp_qualifies`) report ``max(matching, LP)`` as their lower
    bound.  An enabled *recorder* times the decompose / plan / solve /
    merge phases and receives one ``solve`` record per component (via
    :func:`repro.exec.solve_components`)."""
    from .exec import solve_components

    rec = _obs.resolve(recorder)
    verdict = classify(fds)
    with rec.span("phase.decompose"):
        decomp = decompose(table, fds, index)
    with rec.span("phase.plan"):
        plans = decomp.plan_schedule(
            verdict.tractable,
            guarantee,
            exact_threshold,
            exact_budget_s,
            per_component_budget_s,
            unit_cost_s=unit_cost_s,
        )
    with rec.span("phase.solve"):
        kept_lists, methods = solve_components(
            decomp, [plan.method for plan in plans], parallel, plans=plans,
            recorder=rec, executor=executor,
        )
    with rec.span("phase.merge"):
        lower_bounds = [None] * len(plans)
        for i, (component, plan) in enumerate(zip(decomp.components, plans)):
            if _lp_qualifies(plan, component.size, exact_threshold, guarantee):
                lp = component.index.lp_lower_bound()
                if lp is not None:
                    matching = component.index.matching_lower_bound()
                    lower_bounds[i] = max(matching, lp)
        return _decomposed_outcome(
            decomp, verdict, methods, kept_lists, parallel, lower_bounds
        )


def clean(
    table: Table,
    fds: FDSet,
    strategy: str = "deletions",
    guarantee: str = "best",
    index: Optional[ConflictIndex] = None,
    decomposed: bool = True,
    parallel: Optional[int] = None,
    exact_threshold: Optional[int] = None,
    exact_budget_s: Optional[float] = None,
    per_component_budget_s: Optional[float] = None,
    unit_cost_s: Optional[float] = None,
    recorder=None,
    executor=None,
) -> CleaningResult:
    """Repair *table* end to end.

    Parameters
    ----------
    strategy:
        ``"deletions"`` (S-repair) or ``"updates"`` (U-repair).
    guarantee:
        * ``"best"`` — optimal when the dichotomy (or the component
          size) permits, bounded approximation otherwise;
        * ``"optimal"`` — insist on a provably optimal repair (may be
          exponential on the hard side; raises on infeasible U cases);
        * ``"fast"`` — polynomial approximation regardless of Δ.
    index:
        Optional prebuilt :class:`ConflictIndex` for ``(table, fds)``,
        e.g. when batch-repairing one table under several strategies.
        Built (and cached on the table) otherwise; assessment and the
        repair step share it either way.
    decomposed:
        Default ``True``: solve per conflict component, each component
        dispatched by the portfolio policy — ``OptSRepair`` where Δ is
        tractable, exact vertex cover on hard-Δ components of at most
        :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD` tuples,
        Bar-Yehuda–Even beyond — so ``guarantee="best"`` is exact
        wherever exactness is affordable *component-wise*, not merely
        table-wise, and ``ratio_bound`` is 1.0 whenever every component
        was solved exactly.  ``False`` restores the historical global
        path (one solver for the whole instance, exact-vs-approx decided
        by total table size).
    parallel:
        Number of worker processes for per-component solving (implies
        nothing when ≤ 1; the merge is deterministic regardless).
    exact_threshold:
        Component-size boundary between exact and approximate solving on
        the APX-hard side of the dichotomy (default
        :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD`).  Raise
        it to buy tighter repairs with branch & bound time — up to
        :data:`~repro.core.kernel.MAX_BITMASK_VERTICES`, where the
        multi-word bitset solver still runs array-native — lower it to
        bound worst-case latency; on the global path it bounds the whole
        table size instead.
    exact_budget_s:
        **Global** exact-solve budget in wall-clock seconds (default:
        unlimited).  On the decomposed deletions path it drives the
        difficulty scheduler
        (:func:`repro.core.decompose.plan_schedule`): components are
        ranked by predicted branch & bound difficulty, granted exact
        solves easiest-first while the *predicted* cumulative cost fits
        the budget, and the residual tail is planned approximate up
        front — so the plan, and with it the serial and worker-pool
        results, is deterministic (the budget buys certified components,
        not a race).  Each granted solve still carries the unspent
        budget as a hard wall-clock ceiling; one that outruns it is
        re-solved with the Bar-Yehuda–Even 2-approximation —
        ``guarantee="optimal"`` raises instead, true to "provably
        optimal or fail" — and the report/ratio bound describe the
        fallback honestly.  On the updates strategy the budget bounds
        the assessment bracket only: the U-repair solvers search update
        space, not vertex covers, and carry their own node-count budget
        (``exact_budget`` in :mod:`repro.core.urepair`).
    per_component_budget_s:
        The historical *per-solve* wall-clock ceiling (default:
        unlimited) — the pre-scheduler semantics of ``exact_budget_s``.
        Usable alone (every ≤-threshold component attempted, each solve
        individually capped) or together with the global budget (each
        scheduled slice additionally capped).  With a per-solve budget
        set and no global one, results may legitimately differ run to
        run on components near the budget boundary.
    unit_cost_s:
        Seconds one unit of predicted difficulty costs on this machine
        (default: the hand-calibrated
        :data:`~repro.core.decompose.DIFFICULTY_UNIT_COST_S`).  A
        ``fdrepair calibrate`` fit deployed here rescales the global
        budget's predicted spend without touching the difficulty
        *ranking*, so the plan stays deterministic.
    recorder:
        Optional :class:`repro.obs.Recorder`.  When enabled, the run is
        wrapped in a ``pipeline.clean`` span with per-phase children
        (index / decompose / plan / solve / merge) and per-component
        ``solve`` trace records; the default
        :data:`repro.obs.NULL_RECORDER` is a guaranteed no-op costing an
        attribute check on the hot paths.
    executor:
        Optional :class:`repro.shard.ShardedExecutor` (or any object
        duck-typing the pool seam plus ``attach_table``) that the
        decomposed deletions path routes per-component solves through
        (see :func:`repro.exec.solve_components`).  Pure solvers keep
        the result byte-identical to local execution; executor failure
        falls back locally.
    """
    if strategy not in ("deletions", "updates"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if guarantee not in ("best", "optimal", "fast"):
        raise ValueError(f"unknown guarantee {guarantee!r}")
    rec = _obs.resolve(recorder)
    defaults = resolve_plan_defaults(
        exact_threshold, None, exact_budget_s, per_component_budget_s,
        unit_cost_s,
    )
    threshold = defaults.threshold
    with rec.span("pipeline.clean", strategy=strategy, guarantee=guarantee):
        with rec.span("phase.index"):
            if index is None:
                index = table.conflict_index(fds)
            else:
                index.ensure_for(fds, table)

        if strategy == "deletions" and decomposed:
            # One decomposition drives both the report and the repair:
            # the components each portfolio method solved *exactly*
            # contribute their solved cost to the bracket (lower =
            # upper), only the approximated ones are bracketed by
            # matching/BYE — so the report comes out at least as tight
            # as standalone assessment, without solving any component
            # twice.
            return _clean_deletions_decomposed(
                table, fds, guarantee, index, parallel, threshold,
                exact_budget_s, per_component_budget_s,
                defaults.unit_cost_s, recorder=rec, executor=executor,
            )
        return _clean_global(
            table, fds, strategy, guarantee, index, decomposed, parallel,
            threshold, exact_budget_s, per_component_budget_s, rec,
        )


def _clean_global(
    table: Table,
    fds: FDSet,
    strategy: str,
    guarantee: str,
    index: ConflictIndex,
    decomposed: bool,
    parallel: Optional[int],
    threshold: int,
    exact_budget_s: Optional[float],
    per_component_budget_s: Optional[float],
    rec,
) -> CleaningResult:
    """The non-decomposed-deletions tail of :func:`clean` (global
    S-repair and both U-repair paths): assess, then one global solve
    under a ``phase.solve`` span."""
    report = assess(
        table, fds, index=index, decomposed=decomposed,
        exact_threshold=threshold, exact_budget_s=exact_budget_s,
        per_component_budget_s=per_component_budget_s, recorder=rec,
    )

    if strategy == "deletions":
        # One global solve: the global budget and the per-solve ceiling
        # coincide, whichever is set bounds it.
        solve_budget_s = (
            exact_budget_s if exact_budget_s is not None
            else per_component_budget_s
        )
        with rec.span("phase.solve"):
            if guarantee == "fast" or (
                guarantee == "best"
                and not report.dichotomy.tractable
                and len(table) > threshold
            ):
                result = approx_s_repair(table, fds, index=index)
            else:
                try:
                    result = optimal_s_repair(
                        table, fds, index=index, exact_budget_s=solve_budget_s
                    )
                except ExactBudgetExceeded:
                    if guarantee == "optimal":
                        # "provably optimal or fail": hitting the budget
                        # IS the failure mode the caller signed up for.
                        raise
                    result = approx_s_repair(table, fds, index=index)
        return CleaningResult(
            cleaned=result.repair,
            report=report,
            strategy=strategy,
            distance=result.distance,
            optimal=result.optimal,
            ratio_bound=result.ratio_bound,
            method=result.method,
            method_counts=result.method_counts,
            component_count=result.component_count,
        )

    # strategy == "updates"
    with rec.span("phase.solve"):
        if decomposed:
            from .core.urepair import optimal_u_repair
            from .exec import decomposed_u_repair

            if guarantee == "optimal":
                u_result = optimal_u_repair(
                    table, fds, index=index, decomposed=True, parallel=parallel
                )
            else:
                # "fast" disables per-component exhaustive search,
                # keeping the whole path polynomial; "best" allows it
                # within budget.
                u_result = decomposed_u_repair(
                    table,
                    fds,
                    allow_exact_search=guarantee == "best",
                    parallel=parallel,
                    index=index,
                )
        elif guarantee == "fast":
            from .core.approx import approx_u_repair

            u_result: URepairResult = approx_u_repair(table, fds, index=index)
        elif guarantee == "optimal":
            from .core.urepair import optimal_u_repair

            u_result = optimal_u_repair(table, fds, index=index)
        else:
            u_result = u_repair(table, fds, index=index)
    return CleaningResult(
        cleaned=u_result.update,
        report=report,
        strategy=strategy,
        distance=u_result.distance,
        optimal=u_result.optimal,
        ratio_bound=u_result.ratio_bound,
        method=u_result.method,
        method_counts=u_result.method_counts,
        component_count=u_result.component_count,
    )
