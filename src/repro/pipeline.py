"""High-level cleaning pipeline: detect → estimate → repair → report.

The paper's introduction motivates optimal repairs twice: (1) fully
automated cleaning, where the optimal repair *is* the cleaned instance,
and (2) human-in-the-loop cleaning, where the optimal repair *cost*
serves as an educated estimate of how dirty the database is and how much
effort completion will take.  This module packages both workflows behind
one call.

:func:`assess` produces a :class:`DirtinessReport` without committing to
a repair: conflict statistics plus a *bracket* on the optimal repair
cost — an admissible lower bound (greedy matching over the conflict
graph: tuple-disjoint conflicting pairs each force one deletion) and the
2-approximation upper bound of Proposition 3.3, so the true optimum is
provably inside ``[lower, upper]`` with ``upper ≤ 2·optimum``.

:func:`clean` runs the full pipeline and returns the repaired table with
the guarantee achieved, choosing deletions or updates and exact or
approximate computation according to the requested policy and the
dichotomy verdict for Δ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .core.approx import approx_s_repair
from .core.conflict_index import ConflictIndex
from .graphs.vertex_cover import ExactBudgetExceeded
from .core.decompose import EXACT_COMPONENT_THRESHOLD, decompose
from .core.dichotomy import DichotomyResult, classify
from .core.fd import FDSet
from .core.srepair import SRepairResult, optimal_s_repair
from .core.table import Table
from .core.urepair import URepairResult, u_repair

__all__ = ["DirtinessReport", "CleaningResult", "assess", "clean"]


@dataclass(frozen=True)
class DirtinessReport:
    """Conflict statistics and a provable bracket on the repair cost.

    ``lower_bound ≤ optimal S-repair distance ≤ upper_bound`` always
    holds, and ``upper_bound ≤ 2 × optimum`` (Proposition 3.3).  A table
    is consistent iff ``conflict_count == 0`` iff the bracket is [0, 0].

    On the (default) decomposed assessment the bracket is the *sum of
    per-component brackets*: components at or below
    :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD` tuples
    contribute their exact optimal deletion cost (lower = upper), larger
    ones their matching/Bar-Yehuda–Even bracket.  Per-component matching
    and BYE sums coincide with the global bounds (both computations are
    component-local), so the decomposed bracket is never looser and is
    strictly tighter whenever any component was solved exactly —
    ``exact_components`` counts those.
    """

    total_tuples: int
    total_weight: float
    conflict_count: int
    conflicting_tuples: int
    lower_bound: float
    upper_bound: float
    complexity: str
    dichotomy: DichotomyResult
    component_count: int = 0
    largest_component: int = 0
    exact_components: int = 0

    @property
    def consistent(self) -> bool:
        return self.conflict_count == 0

    @property
    def dirtiness_fraction(self) -> float:
        """Upper-bound estimate of the weight fraction needing change."""
        if self.total_weight == 0:
            return 0.0
        return self.upper_bound / self.total_weight

    @property
    def bracket_is_tight(self) -> bool:
        """True iff lower and upper bound coincide — the polynomial
        assessment then *certifies* the optimal repair cost without
        solving the (possibly APX-complete) problem exactly.  Happens
        surprisingly often on real dirtiness patterns, where conflicts
        form disjoint clusters."""
        return self.lower_bound == self.upper_bound

    def summary(self) -> str:
        lines = [
            f"tuples: {self.total_tuples} (total weight {self.total_weight:g})",
            f"conflicting pairs: {self.conflict_count} "
            f"across {self.conflicting_tuples} tuples",
            f"conflict components: {self.component_count}"
            + (
                f" (largest {self.largest_component} tuples, "
                f"{self.exact_components} bracketed exactly)"
                if self.component_count
                else ""
            ),
            f"optimal deletion cost bracket: "
            f"[{self.lower_bound:g}, {self.upper_bound:g}]"
            + (" (tight)" if self.bracket_is_tight and self.conflict_count else ""),
            f"estimated dirtiness: ≤ {100 * self.dirtiness_fraction:.1f}% "
            "of total weight",
            f"optimal S-repair complexity for Δ: {self.complexity}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class CleaningResult:
    """Outcome of :func:`clean`: the repaired table plus provenance.

    ``ratio_bound`` is *instance-specific* on the decomposed path: 1.0
    whenever every component was solved exactly — even for an FD set
    that is APX-complete in general — and the proven per-component
    maximum otherwise.  ``method_counts`` records the portfolio mix
    (method → number of components it handled) and ``component_count``
    how many conflict components the instance decomposed into (``None``
    on the global path).
    """

    cleaned: Table
    report: DirtinessReport
    strategy: str
    distance: float
    optimal: bool
    ratio_bound: float
    method: str
    method_counts: Optional[Mapping[str, int]] = None
    component_count: Optional[int] = None


def _bracket_component(index, table: Table) -> tuple:
    """Polynomial [matching, Bar-Yehuda–Even] bracket of one (sub-)index."""
    from .graphs.vertex_cover import bar_yehuda_even, maximalize_independent_set

    lower = index.matching_lower_bound()
    if index.num_edges:
        cover = bar_yehuda_even(index)
        kept = {tid for tid in table.ids() if tid not in cover}
        kept = maximalize_independent_set(index, kept)
        upper = table.total_weight() - table.total_weight(kept)
    else:
        upper = 0.0
    return lower, upper


def assess(
    table: Table,
    fds: FDSet,
    index: Optional[ConflictIndex] = None,
    decomposed: bool = True,
    exact_threshold: Optional[int] = None,
    exact_budget_s: Optional[float] = None,
) -> DirtinessReport:
    """Detect conflicts and bracket the optimal repair cost (no repair).

    The bracket is the sum of per-component brackets over the conflict
    graph's connected components: a component of at most
    *exact_threshold* tuples (default
    :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD`) contributes
    its **exact** optimal deletion cost — the vertex-cover branch & bound
    is empirically instantaneous at that size — and a larger component
    its matching lower bound and Bar-Yehuda–Even upper bound
    (Proposition 3.3).  The result is never looser than the global
    bracket (matching and BYE are component-local computations) and is
    strictly tighter whenever any component is bracketed exactly.  With
    ``decomposed=False`` the historical single global bracket is
    computed, which is also the fallback guaranteeing polynomial time on
    adversarial components.  *exact_budget_s* is the escape hatch for
    pathological dense components: an exact bracket whose branch & bound
    outruns the wall-clock budget keeps its polynomial [matching, BYE]
    bounds instead (and does not count as exact).  All readings are
    served by the table's cached :class:`ConflictIndex` — or the
    prebuilt one passed in — so assessment costs one bucketing pass,
    shared with any subsequent repair call on the same table.
    """
    if index is None:
        index = table.conflict_index(fds)
    else:
        index.ensure_for(fds, table)

    verdict = classify(fds)
    threshold = (
        EXACT_COMPONENT_THRESHOLD if exact_threshold is None else exact_threshold
    )

    component_count = 0
    largest = 0
    exact_components = 0
    if decomposed and index.num_edges:
        from .core.exact import ExactBudgetExceeded, exact_cover_of_index

        decomp = decompose(table, fds, index)
        component_count = decomp.component_count
        largest = decomp.largest_component
        lower = upper = 0.0
        for component in decomp.components:
            # The cheap polynomial bracket first: when it is already
            # tight the component optimum is certified and the branch &
            # bound has nothing to add.
            c_lower, c_upper = _bracket_component(component.index, component.table)
            if c_lower == c_upper:
                exact_components += 1
            elif component.size <= threshold:
                try:
                    cover = exact_cover_of_index(
                        component.index, node_limit=threshold,
                        budget_s=exact_budget_s,
                    )
                except ExactBudgetExceeded:
                    pass  # budget hit: the polynomial bracket stands
                else:
                    c_lower = c_upper = component.table.total_weight(cover)
                    exact_components += 1
            lower += c_lower
            upper += c_upper
    else:
        lower, upper = _bracket_component(index, table)
        if index.num_edges:
            components = index.components()
            component_count = len(components)
            largest = max(len(c) for c in components)

    return DirtinessReport(
        total_tuples=len(table),
        total_weight=table.total_weight(),
        conflict_count=index.num_edges,
        conflicting_tuples=len(index.conflicting_tuples()),
        lower_bound=lower,
        upper_bound=upper,
        complexity=verdict.complexity,
        dichotomy=verdict,
        component_count=component_count,
        largest_component=largest,
        exact_components=exact_components,
    )


def _decomposed_outcome(
    decomp,
    verdict: DichotomyResult,
    methods,
    kept_lists,
    parallel: Optional[int],
    lower_bounds=None,
) -> CleaningResult:
    """Assemble the :class:`CleaningResult` (report included) of a
    decomposed S-repair from its per-component kept sets.

    Shared by :func:`_clean_deletions_decomposed` and the streaming
    :class:`repro.session.RepairSession`: both feed per-component solves
    — freshly computed or cache-served — through the same assembly, so a
    session result is byte-identical to a from-scratch ``clean``.

    *lower_bounds*, when given, supplies a precomputed matching lower
    bound per component (``None`` entries fall back to recomputing from
    the component index); the bound is a pure function of the component,
    so cached and recomputed values coincide exactly.
    """
    from .exec import assemble_s_result

    table = decomp.table
    lower = upper = 0.0
    exact_components = 0
    for i, (component, method, kept) in enumerate(
        zip(decomp.components, methods, kept_lists)
    ):
        deleted = component.table.total_weight() - component.table.total_weight(kept)
        if method in ("dichotomy", "exact"):
            lower += deleted
            upper += deleted
            exact_components += 1
        else:
            # The solver already ran BYE + maximalisation for this
            # component: its deleted weight *is* the Proposition 3.3
            # upper bound; only the matching lower bound is left.
            bound = lower_bounds[i] if lower_bounds is not None else None
            if bound is None:
                bound = component.index.matching_lower_bound()
            lower += bound
            upper += deleted
    report = DirtinessReport(
        total_tuples=len(table),
        total_weight=table.total_weight(),
        conflict_count=decomp.index.num_edges,
        conflicting_tuples=decomp.conflicting_tuple_count(),
        lower_bound=lower,
        upper_bound=upper,
        complexity=verdict.complexity,
        dichotomy=verdict,
        component_count=decomp.component_count,
        largest_component=decomp.largest_component,
        exact_components=exact_components,
    )
    result = assemble_s_result(decomp, methods, kept_lists, parallel)
    return CleaningResult(
        cleaned=result.repair,
        report=report,
        strategy="deletions",
        distance=result.distance,
        optimal=result.optimal,
        ratio_bound=result.ratio_bound,
        method=result.method,
        method_counts=result.method_counts,
        component_count=result.component_count,
    )


def _clean_deletions_decomposed(
    table: Table,
    fds: FDSet,
    guarantee: str,
    index: ConflictIndex,
    parallel: Optional[int],
    exact_threshold: int = EXACT_COMPONENT_THRESHOLD,
    exact_budget_s: Optional[float] = None,
) -> CleaningResult:
    """The decomposed S-repair pipeline: decompose once, solve each
    component by the portfolio policy, and derive the dirtiness report
    from the same per-component solutions.  The *effective* methods come
    back from the solve — an exact component that outran *exact_budget_s*
    re-solved approximately — so report and label describe what ran."""
    from .exec import solve_components

    verdict = classify(fds)
    decomp = decompose(table, fds, index)
    methods = decomp.plan_methods(verdict.tractable, guarantee, exact_threshold)
    kept_lists, methods = solve_components(
        decomp, methods, parallel, budget_s=exact_budget_s
    )
    return _decomposed_outcome(decomp, verdict, methods, kept_lists, parallel)


def clean(
    table: Table,
    fds: FDSet,
    strategy: str = "deletions",
    guarantee: str = "best",
    index: Optional[ConflictIndex] = None,
    decomposed: bool = True,
    parallel: Optional[int] = None,
    exact_threshold: Optional[int] = None,
    exact_budget_s: Optional[float] = None,
) -> CleaningResult:
    """Repair *table* end to end.

    Parameters
    ----------
    strategy:
        ``"deletions"`` (S-repair) or ``"updates"`` (U-repair).
    guarantee:
        * ``"best"`` — optimal when the dichotomy (or the component
          size) permits, bounded approximation otherwise;
        * ``"optimal"`` — insist on a provably optimal repair (may be
          exponential on the hard side; raises on infeasible U cases);
        * ``"fast"`` — polynomial approximation regardless of Δ.
    index:
        Optional prebuilt :class:`ConflictIndex` for ``(table, fds)``,
        e.g. when batch-repairing one table under several strategies.
        Built (and cached on the table) otherwise; assessment and the
        repair step share it either way.
    decomposed:
        Default ``True``: solve per conflict component, each component
        dispatched by the portfolio policy — ``OptSRepair`` where Δ is
        tractable, exact vertex cover on hard-Δ components of at most
        :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD` tuples,
        Bar-Yehuda–Even beyond — so ``guarantee="best"`` is exact
        wherever exactness is affordable *component-wise*, not merely
        table-wise, and ``ratio_bound`` is 1.0 whenever every component
        was solved exactly.  ``False`` restores the historical global
        path (one solver for the whole instance, exact-vs-approx decided
        by total table size).
    parallel:
        Number of worker processes for per-component solving (implies
        nothing when ≤ 1; the merge is deterministic regardless).
    exact_threshold:
        Component-size boundary between exact and approximate solving on
        the APX-hard side of the dichotomy (default
        :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD`).  Raise
        it to buy tighter repairs with branch & bound time — up to
        :data:`~repro.core.kernel.MAX_BITMASK_VERTICES`, where the
        multi-word bitset solver still runs array-native — lower it to
        bound worst-case latency; on the global path it bounds the whole
        table size instead.
    exact_budget_s:
        Wall-clock escape hatch per exact *vertex-cover* solve (default:
        unlimited).  On the deletions strategy, a component whose branch
        & bound outruns the budget is re-solved with the Bar-Yehuda–Even
        2-approximation — ``guarantee="optimal"`` raises instead, true
        to "provably optimal or fail" — and the report/ratio bound
        describe the fallback honestly.  On the updates strategy the
        budget bounds the assessment bracket only: the U-repair solvers
        search update space, not vertex covers, and carry their own
        node-count budget (``exact_budget`` in
        :mod:`repro.core.urepair`).  The knob exists so a raised
        ``exact_threshold`` cannot stall the pipeline on a pathological
        dense component; note that with a budget set, results may
        legitimately differ run to run on components near the budget
        boundary.
    """
    if strategy not in ("deletions", "updates"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if guarantee not in ("best", "optimal", "fast"):
        raise ValueError(f"unknown guarantee {guarantee!r}")
    threshold = (
        EXACT_COMPONENT_THRESHOLD if exact_threshold is None else exact_threshold
    )
    if index is None:
        index = table.conflict_index(fds)
    else:
        index.ensure_for(fds, table)

    if strategy == "deletions" and decomposed:
        # One decomposition drives both the report and the repair: the
        # components each portfolio method solved *exactly* contribute
        # their solved cost to the bracket (lower = upper), only the
        # approximated ones are bracketed by matching/BYE — so the
        # report comes out at least as tight as standalone assessment,
        # without solving any component twice.
        return _clean_deletions_decomposed(
            table, fds, guarantee, index, parallel, threshold, exact_budget_s
        )

    report = assess(
        table, fds, index=index, decomposed=decomposed,
        exact_threshold=threshold, exact_budget_s=exact_budget_s,
    )

    if strategy == "deletions":
        if guarantee == "fast" or (
            guarantee == "best"
            and not report.dichotomy.tractable
            and len(table) > threshold
        ):
            result = approx_s_repair(table, fds, index=index)
        else:
            try:
                result = optimal_s_repair(
                    table, fds, index=index, exact_budget_s=exact_budget_s
                )
            except ExactBudgetExceeded:
                if guarantee == "optimal":
                    # "provably optimal or fail": hitting the budget IS
                    # the failure mode the caller signed up for.
                    raise
                result = approx_s_repair(table, fds, index=index)
        return CleaningResult(
            cleaned=result.repair,
            report=report,
            strategy=strategy,
            distance=result.distance,
            optimal=result.optimal,
            ratio_bound=result.ratio_bound,
            method=result.method,
            method_counts=result.method_counts,
            component_count=result.component_count,
        )

    # strategy == "updates"
    if decomposed:
        from .core.urepair import optimal_u_repair
        from .exec import decomposed_u_repair

        if guarantee == "optimal":
            u_result = optimal_u_repair(
                table, fds, index=index, decomposed=True, parallel=parallel
            )
        else:
            # "fast" disables per-component exhaustive search, keeping
            # the whole path polynomial; "best" allows it within budget.
            u_result = decomposed_u_repair(
                table,
                fds,
                allow_exact_search=guarantee == "best",
                parallel=parallel,
                index=index,
            )
    elif guarantee == "fast":
        from .core.approx import approx_u_repair

        u_result: URepairResult = approx_u_repair(table, fds, index=index)
    elif guarantee == "optimal":
        from .core.urepair import optimal_u_repair

        u_result = optimal_u_repair(table, fds, index=index)
    else:
        u_result = u_repair(table, fds, index=index)
    return CleaningResult(
        cleaned=u_result.update,
        report=report,
        strategy=strategy,
        distance=u_result.distance,
        optimal=u_result.optimal,
        ratio_bound=u_result.ratio_bound,
        method=u_result.method,
        method_counts=u_result.method_counts,
        component_count=u_result.component_count,
    )
