"""High-level cleaning pipeline: detect → estimate → repair → report.

The paper's introduction motivates optimal repairs twice: (1) fully
automated cleaning, where the optimal repair *is* the cleaned instance,
and (2) human-in-the-loop cleaning, where the optimal repair *cost*
serves as an educated estimate of how dirty the database is and how much
effort completion will take.  This module packages both workflows behind
one call.

:func:`assess` produces a :class:`DirtinessReport` without committing to
a repair: conflict statistics plus a *bracket* on the optimal repair
cost — an admissible lower bound (greedy matching over the conflict
graph: tuple-disjoint conflicting pairs each force one deletion) and the
2-approximation upper bound of Proposition 3.3, so the true optimum is
provably inside ``[lower, upper]`` with ``upper ≤ 2·optimum``.

:func:`clean` runs the full pipeline and returns the repaired table with
the guarantee achieved, choosing deletions or updates and exact or
approximate computation according to the requested policy and the
dichotomy verdict for Δ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from .core.approx import approx_s_repair
from .core.dichotomy import DichotomyResult, classify
from .core.fd import FDSet
from .core.srepair import SRepairResult, optimal_s_repair
from .core.table import Table, TupleId
from .core.urepair import URepairResult, u_repair
from .core.violations import conflict_graph, conflicting_ids

__all__ = ["DirtinessReport", "CleaningResult", "assess", "clean"]


@dataclass(frozen=True)
class DirtinessReport:
    """Conflict statistics and a provable bracket on the repair cost.

    ``lower_bound ≤ optimal S-repair distance ≤ upper_bound`` always
    holds, and ``upper_bound ≤ 2 × optimum`` (Proposition 3.3).  A table
    is consistent iff ``conflict_count == 0`` iff the bracket is [0, 0].
    """

    total_tuples: int
    total_weight: float
    conflict_count: int
    conflicting_tuples: int
    lower_bound: float
    upper_bound: float
    complexity: str
    dichotomy: DichotomyResult

    @property
    def consistent(self) -> bool:
        return self.conflict_count == 0

    @property
    def dirtiness_fraction(self) -> float:
        """Upper-bound estimate of the weight fraction needing change."""
        if self.total_weight == 0:
            return 0.0
        return self.upper_bound / self.total_weight

    @property
    def bracket_is_tight(self) -> bool:
        """True iff lower and upper bound coincide — the polynomial
        assessment then *certifies* the optimal repair cost without
        solving the (possibly APX-complete) problem exactly.  Happens
        surprisingly often on real dirtiness patterns, where conflicts
        form disjoint clusters."""
        return self.lower_bound == self.upper_bound

    def summary(self) -> str:
        lines = [
            f"tuples: {self.total_tuples} (total weight {self.total_weight:g})",
            f"conflicting pairs: {self.conflict_count} "
            f"across {self.conflicting_tuples} tuples",
            f"optimal deletion cost bracket: "
            f"[{self.lower_bound:g}, {self.upper_bound:g}]",
            f"estimated dirtiness: ≤ {100 * self.dirtiness_fraction:.1f}% "
            "of total weight",
            f"optimal S-repair complexity for Δ: {self.complexity}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class CleaningResult:
    """Outcome of :func:`clean`: the repaired table plus provenance."""

    cleaned: Table
    report: DirtinessReport
    strategy: str
    distance: float
    optimal: bool
    ratio_bound: float
    method: str


def assess(table: Table, fds: FDSet) -> DirtinessReport:
    """Detect conflicts and bracket the optimal repair cost (no repair).

    Polynomial regardless of Δ — the bracket comes from the matching
    lower bound and the Bar-Yehuda–Even upper bound, not from solving the
    (possibly APX-complete) exact problem.  The conflict graph is built
    once and shared by the statistics, the lower bound, and the upper
    bound.
    """
    graph = conflict_graph(table, fds)
    pairs = graph.edges()
    involved: Set[TupleId] = set()
    for t1, t2 in pairs:
        involved.add(t1)
        involved.add(t2)

    # Matching lower bound: tuple-disjoint conflicting pairs each force
    # one deletion of at least the lighter tuple.
    used: Set[TupleId] = set()
    lower = 0.0
    for t1, t2 in pairs:
        if t1 in used or t2 in used:
            continue
        used.add(t1)
        used.add(t2)
        lower += min(table.weight(t1), table.weight(t2))

    # Upper bound: Bar-Yehuda–Even cover on the same graph (Prop 3.3).
    if pairs:
        from .graphs.vertex_cover import bar_yehuda_even, maximalize_independent_set

        cover = bar_yehuda_even(graph)
        kept = {tid for tid in table.ids() if tid not in cover}
        kept = maximalize_independent_set(graph, kept)
        upper = table.total_weight() - table.total_weight(kept)
    else:
        upper = 0.0

    verdict = classify(fds)
    return DirtinessReport(
        total_tuples=len(table),
        total_weight=table.total_weight(),
        conflict_count=len(pairs),
        conflicting_tuples=len(involved),
        lower_bound=lower,
        upper_bound=upper,
        complexity=verdict.complexity,
        dichotomy=verdict,
    )


def clean(
    table: Table,
    fds: FDSet,
    strategy: str = "deletions",
    guarantee: str = "best",
) -> CleaningResult:
    """Repair *table* end to end.

    Parameters
    ----------
    strategy:
        ``"deletions"`` (S-repair) or ``"updates"`` (U-repair).
    guarantee:
        * ``"best"`` — optimal when the dichotomy (or instance size)
          permits, bounded approximation otherwise;
        * ``"optimal"`` — insist on a provably optimal repair (may be
          exponential on the hard side; raises on infeasible U cases);
        * ``"fast"`` — polynomial approximation regardless of Δ.
    """
    if strategy not in ("deletions", "updates"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if guarantee not in ("best", "optimal", "fast"):
        raise ValueError(f"unknown guarantee {guarantee!r}")
    report = assess(table, fds)

    if strategy == "deletions":
        if guarantee == "fast" or (
            guarantee == "best" and not report.dichotomy.tractable and len(table) > 64
        ):
            result = approx_s_repair(table, fds)
        else:
            result = optimal_s_repair(table, fds)
        return CleaningResult(
            cleaned=result.repair,
            report=report,
            strategy=strategy,
            distance=result.distance,
            optimal=result.optimal,
            ratio_bound=result.ratio_bound,
            method=result.method,
        )

    # strategy == "updates"
    if guarantee == "fast":
        from .core.approx import approx_u_repair

        u_result: URepairResult = approx_u_repair(table, fds)
    elif guarantee == "optimal":
        from .core.urepair import optimal_u_repair

        u_result = optimal_u_repair(table, fds)
    else:
        u_result = u_repair(table, fds)
    return CleaningResult(
        cleaned=u_result.update,
        report=report,
        strategy=strategy,
        distance=u_result.distance,
        optimal=u_result.optimal,
        ratio_bound=u_result.ratio_bound,
        method=u_result.method,
    )
