"""Streaming repair sessions: incremental re-repair under tuple deltas.

Every entry point below this module is batch: ``pipeline.clean`` builds a
conflict index, decomposes, and solves every component — correct, but
wasteful for a long-lived service where a tuple append usually touches
one conflict component (often none).  The component decomposition is
exactly what makes re-repair localisable: a delta can only change the
repair of components whose conflict structure it touches, and components
are content-addressable (their member rows + weights under a fixed Δ
determine their optimal repair).

A :class:`RepairSession` therefore holds, for one ``(table, Δ)`` stream:

* the current table (re-snapshotted per delta; tables stay immutable),
* one **live** :class:`~repro.core.conflict_index.ConflictIndex`,
  maintained by :meth:`~repro.core.conflict_index.ConflictIndex.insert` /
  :meth:`~repro.core.conflict_index.ConflictIndex.remove` in
  O(delta · (lhs-group + |Δ|)) instead of a per-call O(|T|·|Δ|) rebuild,
* a **content-addressed per-component repair cache** keyed on
  ``(method, frozen member rows + weights)`` — components untouched by
  the delta hit the cache and are never re-solved,
* optionally a :class:`~repro.exec.PersistentWorkerPool` of warm worker
  processes that mirror the table via the same deltas and solve cache
  misses shipped as component ids only.

The load-bearing contract, pinned by ``tests/test_session.py`` property
tests: after **any** sequence of appends and deletes,
:meth:`RepairSession.repair` returns a :class:`~repro.pipeline.CleaningResult`
byte-identical to a from-scratch ``pipeline.clean`` of the current table
— same repaired table, distance, report bracket, and portfolio label.
This holds because every ingredient is shared with the batch path: the
live index equals a rebuild (the PR-1/PR-3 index algebra properties),
decomposition and the portfolio plan are the same code, and the cached
per-component solves are pure functions of content the cache key freezes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .core.conflict_index import ConflictIndex
from .core.decompose import (
    EXACT_COMPONENT_THRESHOLD,
    Component,
    Decomposition,
)
from .core.dichotomy import classify
from .core.fd import FDSet
from .core.table import Row, Table, TupleId
from .pipeline import CleaningResult, _decomposed_outcome

__all__ = ["RepairSession", "SessionStats"]


@dataclass
class SessionStats:
    """Running counters of one session's incremental work."""

    appends: int = 0
    deletes: int = 0
    repairs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    pool_solves: int = 0
    serial_solves: int = 0
    pool_fallbacks: int = 0
    tuples_appended: int = 0
    tuples_deleted: int = 0

    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class _CachedSolve:
    """One component's solved repair: the kept ids, the method that
    actually ran (differs from the planned one exactly when an exact
    solve fell back to ``"approx"`` under the session's exact budget),
    plus — for approximate methods — the matching lower bound its report
    bracket needs (kept ids and bound are pure functions of the
    component, so serving them from cache is indistinguishable from
    recomputing; the cached method makes a budget fallback *sticky*, so
    repeated repairs of an unchanged component stay deterministic)."""

    kept: Tuple[TupleId, ...]
    method: str
    lower_bound: Optional[float] = None


class RepairSession:
    """An incremental repair service over one table and FD set.

    Parameters
    ----------
    table:
        The initial table (may be empty).  The session snapshots it; the
        caller's object is never mutated.
    fds:
        The FD set Δ, fixed for the session's lifetime.
    guarantee:
        Portfolio guarantee, as in :func:`repro.pipeline.clean`
        (``"best"`` / ``"optimal"`` / ``"fast"``).
    exact_threshold:
        Component-size boundary for exact solving on hard Δ (default
        :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD`).
    exact_budget_s:
        Wall-clock escape hatch per exact component solve (default:
        unlimited): a component whose branch & bound outruns it falls
        back to the 2-approximation, recorded in the component cache so
        the fallback is sticky while the component's content is
        unchanged.  Ships to the warm workers alongside the kernel flag.
    parallel:
        Worker count for solving cache misses.  With ``> 1`` the session
        keeps a :class:`~repro.exec.PersistentWorkerPool` of warm
        processes mirroring the table via deltas; platforms without
        subprocess support degrade to in-process solving silently (the
        results are identical either way).
    node_limit:
        Branch & bound node budget per exact component solve.
    max_cache_entries:
        Cap on the per-component cache (default 10 000 entries) —
        superseded entries are not invalidated eagerly, so an unbounded
        cache would grow for as long as the stream runs.  Least-recently
        -used entries are evicted; correctness is unaffected (evicted
        components simply re-solve).  ``None`` disables the bound.
    pool_timeout:
        Seconds to wait for the warm workers to finish one batch of
        solves (default 600).  On expiry the pool is dropped and the
        batch re-solves in process — raise it for ``guarantee="optimal"``
        sessions whose exact components may legitimately run long.

    Only the ``"deletions"`` strategy is supported: update repairs mint
    fresh labelled nulls whose identity-based equality makes
    "byte-identical to a from-scratch run" unobservable, so an
    incremental U-repair cache could not be pinned by the session's
    core property.  Use :func:`repro.pipeline.clean` for batch U-repairs.
    """

    def __init__(
        self,
        table: Table,
        fds: FDSet,
        *,
        guarantee: str = "best",
        exact_threshold: Optional[int] = None,
        exact_budget_s: Optional[float] = None,
        parallel: Optional[int] = None,
        node_limit: int = 2000,
        max_cache_entries: Optional[int] = 10_000,
        pool_timeout: float = 600.0,
    ) -> None:
        if guarantee not in ("best", "optimal", "fast"):
            raise ValueError(f"unknown guarantee {guarantee!r}")
        self._fds = fds
        self._guarantee = guarantee
        self._threshold = (
            EXACT_COMPONENT_THRESHOLD if exact_threshold is None
            else exact_threshold
        )
        self._exact_budget_s = exact_budget_s
        self._parallel = parallel
        self._node_limit = node_limit
        self._max_cache_entries = max_cache_entries
        self._pool_timeout = pool_timeout
        self._verdict = classify(fds)
        self._schema = table.schema
        self._attr_index: Dict[str, int] = {
            a: i for i, a in enumerate(self._schema)
        }
        self._name = table.name
        self._rows: Dict[TupleId, Row] = table.rows()
        self._weights: Dict[TupleId, float] = table.weights()
        self._used_ids = set(self._rows)
        self._next_auto_id = 1 + max(
            (tid for tid in self._rows if isinstance(tid, int)), default=0
        )
        self._table = self._snapshot()
        self._index = ConflictIndex(self._table, fds)
        # Component reuse across deltas: member-id tuple → (Component,
        # content key).  A tuple's row and weight never change while it
        # lives (sessions have no update op), so identical member ids
        # mean identical content — the sub-table, projected sub-index,
        # and cache key of an untouched component carry over verbatim
        # instead of being re-derived per delta.
        self._component_reuse: Dict[Tuple[TupleId, ...], Tuple[Component, Tuple]] = {}
        self._solutions: Dict[Tuple, _CachedSolve] = {}
        self._pool = None
        # When the index is kernel-backed, worker mirrors are kept in
        # *coded* rows (the codec stays live under session deltas): the
        # kept-id results are identical — solvers only observe the value
        # equality pattern — and the broadcast payloads shrink to small
        # ints.  Decided once, here, so reset and delta broadcasts agree
        # for the pool's whole life.
        self._pool_coded = self._index._codec is not None
        self._pool_disabled = False
        self.stats = SessionStats()
        self.last_result: Optional[CleaningResult] = None

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        """The current table snapshot."""
        return self._table

    @property
    def fds(self) -> FDSet:
        return self._fds

    @property
    def index(self) -> ConflictIndex:
        """The live conflict index (treat as read-only)."""
        return self._index

    def __len__(self) -> int:
        return len(self._rows)

    def cache_size(self) -> int:
        return len(self._solutions)

    def clear_cache(self) -> None:
        """Drop all cached component repairs (they rebuild on demand)."""
        self._solutions.clear()

    # ------------------------------------------------------------------
    # Deltas
    # ------------------------------------------------------------------
    def _snapshot(self) -> Table:
        """A fresh immutable table over the current rows/weights.

        Trusted construction: the session validated every row on entry
        (arity via the index's insert, weights positive), so re-checking
        per snapshot would make each delta O(|T|·k) for no information.
        """
        return Table._from_trusted(
            self._schema,
            dict(self._rows),
            dict(self._weights),
            self._name,
            self._attr_index,
        )

    def _normalise_row(self, row) -> Row:
        if isinstance(row, Mapping):
            try:
                return tuple(row[a] for a in self._schema)
            except KeyError as exc:
                raise ValueError(
                    f"record is missing attribute {exc.args[0]!r}"
                ) from None
        return tuple(row)

    def _allocate_id(self) -> TupleId:
        while self._next_auto_id in self._used_ids:
            self._next_auto_id += 1
        tid = self._next_auto_id
        self._next_auto_id += 1
        return tid

    def append(
        self,
        rows: Iterable,
        weights: Optional[Sequence[float]] = None,
        ids: Optional[Sequence[TupleId]] = None,
        repair: bool = True,
    ) -> Optional[CleaningResult]:
        """Append tuples and (by default) return the re-repaired result.

        *rows* may be value sequences or attribute-keyed mappings.
        Identifiers are auto-assigned (fresh integers) unless *ids* is
        given; weights default to 1.0.  With ``repair=False`` the delta
        is applied (index, pool mirrors) but no repair is computed —
        useful for ingesting a burst before asking for one result.
        """
        rows = [self._normalise_row(r) for r in rows]
        if weights is not None and len(weights) != len(rows):
            raise ValueError("weights and rows have different lengths")
        if ids is not None:
            if len(ids) != len(rows):
                raise ValueError("ids and rows have different lengths")
            clashes = [tid for tid in ids if tid in self._rows]
            if clashes:
                raise ValueError(
                    f"identifiers already live: {sorted(map(str, clashes))}"
                )
            if len(set(ids)) != len(ids):
                raise ValueError("duplicate identifiers in append")
        # Validate everything *before* the first mutation, so a bad row
        # mid-batch cannot leave the index and the row store divergent.
        arity = len(self._schema)
        for row in rows:
            if len(row) != arity:
                raise ValueError(
                    f"row has arity {len(row)}, schema has {arity}"
                )
        new_weights = [
            float(w) for w in (weights if weights is not None else [1.0] * len(rows))
        ]
        for weight in new_weights:
            if weight <= 0:
                raise ValueError(f"non-positive weight {weight}")
        new_ids = list(ids) if ids is not None else [
            self._allocate_id() for _ in rows
        ]
        # A re-appended identifier may carry different content than it
        # did in a past life; drop any reusable component that remembers
        # it (the content-addressed solution cache needs no such care).
        recycled = [tid for tid in new_ids if tid in self._used_ids]
        if recycled:
            self._invalidate_components(recycled)
        for tid, row, weight in zip(new_ids, rows, new_weights):
            self._index.insert(tid, row, weight)
            self._rows[tid] = row
            self._weights[tid] = weight
            self._used_ids.add(tid)
        self._table = self._snapshot()
        self._index.reanchor(self._table)
        self.stats.appends += 1
        self.stats.tuples_appended += len(rows)
        if self._pool is not None and self._pool.alive and rows:
            delta_rows = self._mirror_rows(new_ids)
            delta_weights = dict(zip(new_ids, new_weights))
            if not self._pool.broadcast(("append", delta_rows, delta_weights)):
                self._drop_pool()
        return self.repair() if repair else None

    def delete(
        self, ids: Iterable[TupleId], repair: bool = True
    ) -> Optional[CleaningResult]:
        """Delete tuples by identifier; see :meth:`append` for *repair*."""
        ids = list(ids)
        missing = [tid for tid in ids if tid not in self._rows]
        if missing:
            raise KeyError(
                f"unknown identifiers: {sorted(map(str, missing))}"
            )
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate identifiers in delete")
        self._invalidate_components(ids)
        for tid in ids:
            self._index.remove(tid)
            del self._rows[tid]
            del self._weights[tid]
        self._table = self._snapshot()
        self._index.reanchor(self._table)
        self.stats.deletes += 1
        self.stats.tuples_deleted += len(ids)
        if self._pool is not None and self._pool.alive and ids:
            if not self._pool.broadcast(("delete", tuple(ids))):
                self._drop_pool()
        return self.repair() if repair else None

    def _invalidate_components(self, ids: Iterable[TupleId]) -> None:
        """Drop reusable components that remember any of *ids*.

        The reuse map assumes a member's row and weight are fixed for as
        long as its id appears in a component key.  A deleted id — which
        may later be re-appended with different content — breaks that
        assumption, so every component holding one is forgotten before
        the delta applies.  O(conflicting tuples) scan, only run when a
        delta actually touches a previously-seen id.
        """
        touched = set(ids)
        stale = [
            key
            for key in self._component_reuse
            if not touched.isdisjoint(key)
        ]
        for key in stale:
            del self._component_reuse[key]

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _decompose(self) -> Decomposition:
        """The current decomposition, reusing untouched components.

        Components whose member-id tuple already exists in the reuse map
        keep their sub-table, (lazily-bucketed) sub-index, and content
        key; only components the delta actually changed are re-projected.
        The assembled :class:`Decomposition` is content-identical to
        :func:`repro.core.decompose.decompose` on the current snapshot —
        component order, member order, and sub-instances all match, so
        everything downstream stays byte-identical to the batch path.
        """
        rows = self._rows
        weights = self._weights
        components: List[Component] = []
        reuse: Dict[Tuple[TupleId, ...], Tuple[Component, Tuple]] = {}
        for ordinal, ids in enumerate(self._index.components()):
            key = tuple(ids)
            cached = self._component_reuse.get(key)
            if cached is None:
                subtable = self._table.subset(ids)
                subindex = self._index.project(subtable, set(ids))
                component = Component(ordinal, key, subtable, subindex)
                content = tuple((tid, rows[tid], weights[tid]) for tid in key)
                cached = (component, content)
            else:
                cached[0].ordinal = ordinal
            reuse[key] = cached
            components.append(cached[0])
        self._component_reuse = reuse
        return Decomposition(
            table=self._table,
            fds=self._fds,
            index=self._index,
            components=components,
            consistent_ids=tuple(self._index.consistent_ids()),
        )

    def _component_key(self, method: str, member_ids: Tuple[TupleId, ...]) -> Tuple:
        cached = self._component_reuse.get(tuple(member_ids))
        if cached is not None:
            return (method, cached[1])
        rows = self._rows
        weights = self._weights
        return (
            method,
            tuple((tid, rows[tid], weights[tid]) for tid in member_ids),
        )

    def _cache_store(self, key: Tuple, entry: _CachedSolve) -> None:
        self._solutions[key] = entry
        cap = self._max_cache_entries
        if cap is not None:
            while len(self._solutions) > cap:
                self._solutions.pop(next(iter(self._solutions)))

    def _mirror_rows(self, ids: Iterable[TupleId]) -> Dict[TupleId, Row]:
        """The rows a worker mirror stores for *ids*: coded when the
        session's index carries a live codec, verbatim otherwise."""
        if self._pool_coded:
            coded_row = self._index._codec.coded_row
            return {tid: coded_row(tid) for tid in ids}
        rows = self._rows
        return {tid: rows[tid] for tid in ids}

    def _ensure_pool(self):
        from .exec import PersistentWorkerPool

        if self._pool is None and not self._pool_disabled:
            pool = PersistentWorkerPool(
                self._parallel, self._schema, self._fds, self._node_limit,
                budget_s=self._exact_budget_s,
            )
            if pool.start() and pool.broadcast(
                ("reset", self._mirror_rows(self._rows), dict(self._weights))
            ):
                self._pool = pool
            else:
                pool.close()
                self._pool_disabled = True
                self.stats.pool_fallbacks += 1
        return self._pool

    def _drop_pool(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._pool_disabled = True
        self.stats.pool_fallbacks += 1

    def _solve_misses(
        self, misses: List[Tuple[int, object, str]]
    ) -> Dict[int, Tuple[Tuple[TupleId, ...], str]]:
        """Solve the cache-missed components; returns ordinal →
        ``(kept ids, effective method)`` (effective ≠ planned exactly
        when an exact solve fell back under the session's exact budget).

        On the warm pool when available (ids-only payloads), in-process
        otherwise; any pool failure falls back serially — the solvers are
        pure, so the retry is safe and byte-identical.
        """
        from .exec import _solve_s_kept

        solved: Dict[int, Tuple[Tuple[TupleId, ...], str]] = {}
        if misses and self._parallel and self._parallel > 1 and len(misses) > 1:
            pool = self._ensure_pool()
            if pool is not None:
                try:
                    outcomes = pool.solve(
                        [(c.ids, method) for _i, c, method in misses],
                        timeout=self._pool_timeout,
                    )
                except RuntimeError:
                    self._drop_pool()
                else:
                    for (i, _c, _m), outcome in zip(misses, outcomes):
                        solved[i] = outcome
                    self.stats.pool_solves += len(misses)
                    return solved
        for i, component, method in misses:
            kept, effective = _solve_s_kept(
                component.table,
                self._fds,
                method,
                self._node_limit,
                index=component.index,
                budget_s=self._exact_budget_s,
            )
            solved[i] = (tuple(kept), effective)
            self.stats.serial_solves += 1
        return solved

    def repair(self) -> CleaningResult:
        """Re-repair the current table, re-solving only the components
        the deltas since the last call actually changed.

        The result is byte-identical to
        ``pipeline.clean(session.table, fds, guarantee=..., parallel=...,
        exact_threshold=...)`` — same cleaned table, distance, dirtiness
        report, and portfolio label.
        """
        decomp = self._decompose()
        methods = decomp.plan_methods(
            self._verdict.tractable, self._guarantee, self._threshold
        )
        kept_lists: List[Optional[Tuple[TupleId, ...]]] = [None] * len(methods)
        lower_bounds: List[Optional[float]] = [None] * len(methods)
        misses: List[Tuple[int, object, str]] = []
        keys: Dict[int, Tuple] = {}
        for i, (component, method) in enumerate(zip(decomp.components, methods)):
            key = self._component_key(method, component.ids)
            keys[i] = key
            entry = self._solutions.get(key)
            if entry is None:
                misses.append((i, component, method))
            else:
                # Refresh recency for the LRU eviction order.
                self._solutions[key] = self._solutions.pop(key)
                kept_lists[i] = entry.kept
                lower_bounds[i] = entry.lower_bound
                methods[i] = entry.method
                self.stats.cache_hits += 1
        solved = self._solve_misses(misses)
        for i, component, method in misses:
            kept, effective = solved[i]
            kept_lists[i] = kept
            methods[i] = effective
            bound = (
                component.index.matching_lower_bound()
                if effective == "approx"
                else None
            )
            lower_bounds[i] = bound
            self._cache_store(keys[i], _CachedSolve(kept, effective, bound))
            self.stats.cache_misses += 1
        result = _decomposed_outcome(
            decomp, self._verdict, methods, kept_lists, self._parallel,
            lower_bounds,
        )
        self.stats.repairs += 1
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (the session stays usable serially)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._pool_disabled = True

    def __enter__(self) -> "RepairSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RepairSession({len(self)} tuples, {self._fds}, "
            f"{self._index.num_edges} conflicts, "
            f"cache={len(self._solutions)})"
        )
