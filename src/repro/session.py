"""Streaming repair sessions: incremental re-repair under tuple deltas.

Every entry point below this module is batch: ``pipeline.clean`` builds a
conflict index, decomposes, and solves every component — correct, but
wasteful for a long-lived service where a tuple append usually touches
one conflict component (often none).  The component decomposition is
exactly what makes re-repair localisable: a delta can only change the
repair of components whose conflict structure it touches, and components
are content-addressable (their member rows + weights under a fixed Δ
determine their optimal repair).

A :class:`RepairSession` therefore holds, for one ``(table, Δ)`` stream:

* the current table (re-snapshotted per delta; tables stay immutable),
* one **live** :class:`~repro.core.conflict_index.ConflictIndex`,
  maintained by :meth:`~repro.core.conflict_index.ConflictIndex.insert` /
  :meth:`~repro.core.conflict_index.ConflictIndex.remove` in
  O(delta · (lhs-group + |Δ|)) instead of a per-call O(|T|·|Δ|) rebuild,
* a **content-addressed per-component repair cache** keyed on
  ``(method, frozen member rows + weights)`` — components untouched by
  the delta hit the cache and are never re-solved,
* optionally a :class:`~repro.exec.PersistentWorkerPool` of warm worker
  processes that mirror the table via the same deltas and solve cache
  misses shipped as component ids only.

The load-bearing contract, pinned by ``tests/test_session.py`` property
tests: after **any** sequence of appends and deletes,
:meth:`RepairSession.repair` returns a :class:`~repro.pipeline.CleaningResult`
byte-identical to a from-scratch ``pipeline.clean`` of the current table
— same repaired table, distance, report bracket, and portfolio label.
This holds because every ingredient is shared with the batch path: the
live index equals a rebuild (the PR-1/PR-3 index algebra properties),
decomposition and the portfolio plan are the same code, and the cached
per-component solves are pure functions of content the cache key freezes.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import asdict, dataclass
from time import perf_counter as _perf_counter
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from . import obs as _obs
from .core.conflict_index import ConflictIndex
from .core.decompose import (
    Component,
    Decomposition,
    resolve_plan_defaults,
)
from .core.dichotomy import classify
from .core.fd import FDSet
from .core.table import Row, Table, TupleId
from .pipeline import (
    CleaningResult,
    _bracket_component,
    _decomposed_outcome,
    _lp_qualifies,
)

__all__ = ["RepairSession", "SessionStats", "SessionStatus", "SolutionCache"]

#: Distinct namespace keys for sessions attached to a shared pool.
_SESSION_KEYS = itertools.count(1)


class SolutionCache:
    """A thread-safe LRU cache of per-component repairs, shareable
    across sessions.

    Component repairs are content-addressed — the kept ids are a pure
    function of the member rows, weights, ids, and the solve method —
    so *any* session whose component carries identical content can serve
    another session's solve verbatim.  This is the component-locality
    result working across tenants: in a multi-tenant daemon where many
    streams carry overlapping data (the schema-discovery workload, or N
    tenants cleaning near-identical dimension tables), one tenant's
    solve becomes every other tenant's cache hit.

    Sessions sharing a cache additionally scope their keys by FD set,
    schema, and solver knobs (see ``RepairSession._cache_scope``), so
    content can never leak between sessions for which the same member
    rows would repair differently.  Mutations take a lock — sessions
    running on different executor threads hit this cache concurrently.
    """

    def __init__(self, max_entries: Optional[int] = 200_000,
                 recorder=None) -> None:
        self._lock = threading.Lock()
        self._data: Dict = {}
        self._max = max_entries
        self._recorder = _obs.resolve(recorder)
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        with self._lock:
            entry = self._data.pop(key, None)
            if entry is None:
                self.misses += 1
                return None
            self._data[key] = entry  # refresh recency
            self.hits += 1
            return entry

    def put(self, key, entry) -> None:
        evicted = 0
        with self._lock:
            self._data[key] = entry
            if self._max is not None:
                while len(self._data) > self._max:
                    self._data.pop(next(iter(self._data)))
                    evicted += 1
            self.evictions += evicted
        if evicted and self._recorder.enabled:
            self._recorder.count("session.cache_evict", evicted)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def export_entries(self) -> Dict:
        """A consistent copy of the cache contents, LRU order preserved
        — what the crash-safe daemon embeds in its snapshots so a
        recovered daemon's first repairs are warm hits."""
        with self._lock:
            return dict(self._data)

    def load_entries(self, data: Mapping) -> None:
        """Bulk-restore exported entries (recovery path); existing
        entries win on key collision, and the size bound still holds."""
        with self._lock:
            for key, entry in data.items():
                if key not in self._data:
                    self._data[key] = entry
            if self._max is not None:
                while len(self._data) > self._max:
                    self._data.pop(next(iter(self._data)))
                    self.evictions += 1

    def __len__(self) -> int:
        return len(self._data)


@dataclass(frozen=True)
class SessionStatus:
    """A solver-free snapshot of one session's dirtiness.

    Served entirely from delta-maintained bookkeeping: the bracket is
    the sum of per-component polynomial ``[matching, Bar-Yehuda–Even]``
    brackets, cached per component and recomputed only for components
    the deltas since the last reading actually touched — no exact
    branch & bound, no OptSRepair, no worker-pool round trip.  The true
    optimal deletion cost always lies inside ``[lower_bound,
    upper_bound]`` (Proposition 3.3).
    """

    tuples: int
    total_weight: float
    conflicts: int
    conflicting_tuples: int
    components: int
    lower_bound: float
    upper_bound: float
    cache_entries: int
    repairs: int

    @property
    def consistent(self) -> bool:
        return self.conflicts == 0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class SessionStats:
    """Running counters of one session's incremental work."""

    appends: int = 0
    deletes: int = 0
    repairs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    pool_solves: int = 0
    serial_solves: int = 0
    pool_fallbacks: int = 0
    tuples_appended: int = 0
    tuples_deleted: int = 0

    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class _CachedSolve:
    """One component's solved repair: the kept ids, the method that
    actually ran (differs from the planned one exactly when an exact
    solve fell back to ``"approx"`` under the session's exact budget),
    plus — for approximate methods — the matching lower bound its report
    bracket needs (kept ids and bound are pure functions of the
    component, so serving them from cache is indistinguishable from
    recomputing; the cached method makes a budget fallback *sticky*, so
    repeated repairs of an unchanged component stay deterministic).

    ``lp_bound`` memoises the half-integral LP relaxation bound.  It is
    computed lazily — only when a *reading* plan qualifies for LP
    tightening (:func:`repro.pipeline._lp_qualifies`) — because the
    solve itself never needs it and whether it applies depends on the
    reader's guarantee/plan, which the cache key deliberately omits so
    sessions with different guarantees can share solves.  The bound is a
    pure function of component content, so back-filling the shared entry
    is an idempotent write."""

    kept: Tuple[TupleId, ...]
    method: str
    lower_bound: Optional[float] = None
    lp_bound: Optional[float] = None


class RepairSession:
    """An incremental repair service over one table and FD set.

    Parameters
    ----------
    table:
        The initial table (may be empty).  The session snapshots it; the
        caller's object is never mutated.
    fds:
        The FD set Δ, fixed for the session's lifetime.
    guarantee:
        Portfolio guarantee, as in :func:`repro.pipeline.clean`
        (``"best"`` / ``"optimal"`` / ``"fast"``).
    exact_threshold:
        Component-size boundary for exact solving on hard Δ (default
        :data:`~repro.core.decompose.EXACT_COMPONENT_THRESHOLD`).
    exact_budget_s:
        **Global** exact-solve budget in wall-clock seconds (default:
        unlimited), as in :func:`repro.pipeline.clean`: each repair's
        components are ranked by predicted difficulty and granted exact
        solves easiest-first while the predicted spend fits; the
        residual tail is planned approximate up front.  Each granted
        solve ships its slice as a hard ceiling; one that outruns it
        falls back to the 2-approximation, recorded in the component
        cache so the fallback is sticky while the component's content
        (and scheduled slice) is unchanged.
    per_component_budget_s:
        The historical *per-solve* wall-clock ceiling (default:
        unlimited) — every exact solve is individually capped, with no
        difficulty scheduling.  May be combined with the global budget,
        in which case each scheduled slice is additionally capped.
        Ships to the warm workers alongside the kernel flag.
    parallel:
        Worker count for solving cache misses.  With ``> 1`` the session
        keeps a :class:`~repro.exec.PersistentWorkerPool` of warm
        processes mirroring the table via deltas; platforms without
        subprocess support degrade to in-process solving silently (the
        results are identical either way).
    node_limit:
        Branch & bound node budget per exact component solve.
    max_cache_entries:
        Cap on the per-component cache (default 10 000 entries) —
        superseded entries are not invalidated eagerly, so an unbounded
        cache would grow for as long as the stream runs.  Least-recently
        -used entries are evicted; correctness is unaffected (evicted
        components simply re-solve).  ``None`` disables the bound.
    pool_timeout:
        Seconds to wait for the warm workers to finish one batch of
        solves (default 600).  On expiry the batch re-solves in process
        — raise it for ``guarantee="optimal"`` sessions whose exact
        components may legitimately run long.
    pool:
        An externally-owned :class:`~repro.exec.PersistentWorkerPool`
        shared with other sessions (the multi-tenant daemon's layout).
        The session attaches its own mirror namespace lazily, keeps it
        synchronised with the same deltas it applies locally, detaches
        on :meth:`close` — and never starts or stops the pool itself:
        engine state is the session's, process lifecycle is the
        caller's.  With a shared pool, even single cache-miss components
        are offloaded, so one session's slow solve keeps the event loop
        (and every other session) responsive.
    session_key:
        Namespace key on the shared *pool* (auto-generated when omitted;
        must be unique per attached session).
    solutions:
        A :class:`SolutionCache` shared with other sessions.  Keys are
        scoped by FD set, schema, and solver knobs, so sharing is always
        byte-identical-safe; ``max_cache_entries`` is ignored in favour
        of the shared cache's own bound.
    recorder:
        Optional :class:`repro.obs.Recorder` (shareable across sessions
        — it is thread-safe).  When enabled, every :meth:`repair` is a
        ``session.repair`` span with phase children, each solved
        component emits a ``solve`` trace record (plan evidence +
        serial/pool-measured actual seconds), and cache hits / misses /
        evictions tick ``session.cache_*`` counters tagged with the
        session key.  The default no-op recorder costs an attribute
        check per guard.

    Only the ``"deletions"`` strategy is supported: update repairs mint
    fresh labelled nulls whose identity-based equality makes
    "byte-identical to a from-scratch run" unobservable, so an
    incremental U-repair cache could not be pinned by the session's
    core property.  Use :func:`repro.pipeline.clean` for batch U-repairs.
    """

    def __init__(
        self,
        table: Table,
        fds: FDSet,
        *,
        guarantee: str = "best",
        exact_threshold: Optional[int] = None,
        exact_budget_s: Optional[float] = None,
        per_component_budget_s: Optional[float] = None,
        unit_cost_s: Optional[float] = None,
        parallel: Optional[int] = None,
        node_limit: Optional[int] = None,
        max_cache_entries: Optional[int] = 10_000,
        pool_timeout: float = 600.0,
        pool=None,
        session_key: Optional[str] = None,
        solutions: Optional[SolutionCache] = None,
        recorder=None,
    ) -> None:
        if guarantee not in ("best", "optimal", "fast"):
            raise ValueError(f"unknown guarantee {guarantee!r}")
        self._recorder = _obs.resolve(recorder)
        self._fds = fds
        self._guarantee = guarantee
        defaults = resolve_plan_defaults(
            exact_threshold, node_limit, exact_budget_s,
            per_component_budget_s, unit_cost_s,
        )
        self._threshold = defaults.threshold
        self._exact_budget_s = defaults.exact_budget_s
        self._per_component_budget_s = defaults.per_component_budget_s
        self._unit_cost_s = defaults.unit_cost_s
        self._parallel = parallel
        self._node_limit = defaults.node_limit
        self._max_cache_entries = max_cache_entries
        self._pool_timeout = pool_timeout
        self._verdict = classify(fds)
        self._schema = table.schema
        self._attr_index: Dict[str, int] = {
            a: i for i, a in enumerate(self._schema)
        }
        self._name = table.name
        self._rows: Dict[TupleId, Row] = table.rows()
        self._weights: Dict[TupleId, float] = table.weights()
        self._used_ids = set(self._rows)
        self._next_auto_id = 1 + max(
            (tid for tid in self._rows if isinstance(tid, int)), default=0
        )
        self._table = self._snapshot()
        self._index = ConflictIndex(self._table, fds)
        # Component reuse across deltas: member-id tuple → (Component,
        # content key).  A tuple's row and weight never change while it
        # lives (sessions have no update op), so identical member ids
        # mean identical content — the sub-table, projected sub-index,
        # and cache key of an untouched component carry over verbatim
        # instead of being re-derived per delta.
        self._component_reuse: Dict[Tuple[TupleId, ...], Tuple[Component, Tuple]] = {}
        self._solutions: Dict[Tuple, _CachedSolve] = {}
        # Cross-session solution sharing: keys into a shared cache are
        # prefixed with everything besides component content that can
        # change a solve's outcome — Δ, the schema (it fixes which
        # columns each FD reads), and the exact-solver knobs (budget
        # fallbacks and node limits are sticky in cached methods) — so
        # two sessions share an entry exactly when serving it is
        # indistinguishable from re-solving.
        self._shared_solutions = solutions
        self._cache_scope = (
            (
                fds,
                self._schema,
                self._node_limit,
                self._exact_budget_s,
                self._per_component_budget_s,
                self._unit_cost_s,
            )
            if solutions is not None
            else None
        )
        # Worker-pool wiring: the pool is either owned (created lazily
        # from the ``parallel`` knob, closed with the session) or shared
        # (passed in by a daemon; the session only attaches/detaches its
        # mirror namespace).  This is the engine-state / process-
        # lifecycle split the server builds on.
        self._pool = pool
        self._pool_owned = pool is None
        self._pool_ready = False
        if session_key is not None:
            self._session_key = session_key
        elif pool is not None:
            self._session_key = f"session-{next(_SESSION_KEYS)}"
        else:
            from .exec import DEFAULT_SESSION_KEY

            self._session_key = DEFAULT_SESSION_KEY
        # When the index is kernel-backed, worker mirrors are kept in
        # *coded* rows (the codec stays live under session deltas): the
        # kept-id results are identical — solvers only observe the value
        # equality pattern — and the broadcast payloads shrink to small
        # ints.  Decided once, here, so reset and delta broadcasts agree
        # for the pool's whole life.
        self._pool_coded = self._index._codec is not None
        self._pool_disabled = False
        # Delta-maintained dirtiness bracket: per-component polynomial
        # [matching, BYE] brackets keyed by member-id tuple, invalidated
        # exactly like the component-reuse map, summed lazily so
        # :meth:`status` never touches a solver.
        self._bracket_by_key: Dict[Tuple[TupleId, ...], Tuple[float, float]] = {}
        self._bracket_totals: Tuple[float, float] = (0.0, 0.0)
        self._bracket_fresh = False
        self.stats = SessionStats()
        self.last_result: Optional[CleaningResult] = None

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        """The current table snapshot."""
        return self._table

    @property
    def fds(self) -> FDSet:
        return self._fds

    @property
    def index(self) -> ConflictIndex:
        """The live conflict index (treat as read-only)."""
        return self._index

    def __len__(self) -> int:
        return len(self._rows)

    def cache_size(self) -> int:
        if self._shared_solutions is not None:
            return len(self._shared_solutions)
        return len(self._solutions)

    def clear_cache(self) -> None:
        """Drop all cached component repairs (they rebuild on demand).
        On a shared cache this clears *every* session's entries."""
        if self._shared_solutions is not None:
            self._shared_solutions.clear()
        self._solutions.clear()

    # ------------------------------------------------------------------
    # Deltas
    # ------------------------------------------------------------------
    def _snapshot(self) -> Table:
        """A fresh immutable table over the current rows/weights.

        Trusted construction: the session validated every row on entry
        (arity via the index's insert, weights positive), so re-checking
        per snapshot would make each delta O(|T|·k) for no information.
        """
        return Table._from_trusted(
            self._schema,
            dict(self._rows),
            dict(self._weights),
            self._name,
            self._attr_index,
        )

    def _normalise_row(self, row) -> Row:
        if isinstance(row, Mapping):
            try:
                return tuple(row[a] for a in self._schema)
            except KeyError as exc:
                raise ValueError(
                    f"record is missing attribute {exc.args[0]!r}"
                ) from None
        return tuple(row)

    def _allocate_id(self) -> TupleId:
        while self._next_auto_id in self._used_ids:
            self._next_auto_id += 1
        tid = self._next_auto_id
        self._next_auto_id += 1
        return tid

    def append(
        self,
        rows: Iterable,
        weights: Optional[Sequence[float]] = None,
        ids: Optional[Sequence[TupleId]] = None,
        repair: bool = True,
    ) -> Optional[CleaningResult]:
        """Append tuples and (by default) return the re-repaired result.

        *rows* may be value sequences or attribute-keyed mappings.
        Identifiers are auto-assigned (fresh integers) unless *ids* is
        given; weights default to 1.0.  With ``repair=False`` the delta
        is applied (index, pool mirrors) but no repair is computed —
        useful for ingesting a burst before asking for one result.
        """
        rows = [self._normalise_row(r) for r in rows]
        if weights is not None and len(weights) != len(rows):
            raise ValueError("weights and rows have different lengths")
        if ids is not None:
            if len(ids) != len(rows):
                raise ValueError("ids and rows have different lengths")
            clashes = [tid for tid in ids if tid in self._rows]
            if clashes:
                raise ValueError(
                    f"identifiers already live: {sorted(map(str, clashes))}"
                )
            if len(set(ids)) != len(ids):
                raise ValueError("duplicate identifiers in append")
        # Validate everything *before* the first mutation, so a bad row
        # mid-batch cannot leave the index and the row store divergent.
        arity = len(self._schema)
        for row in rows:
            if len(row) != arity:
                raise ValueError(
                    f"row has arity {len(row)}, schema has {arity}"
                )
        new_weights = [
            float(w) for w in (weights if weights is not None else [1.0] * len(rows))
        ]
        for weight in new_weights:
            if weight <= 0:
                raise ValueError(f"non-positive weight {weight}")
        new_ids = list(ids) if ids is not None else [
            self._allocate_id() for _ in rows
        ]
        # A re-appended identifier may carry different content than it
        # did in a past life; drop any reusable component that remembers
        # it (the content-addressed solution cache needs no such care).
        recycled = [tid for tid in new_ids if tid in self._used_ids]
        if recycled:
            self._invalidate_components(recycled)
        for tid, row, weight in zip(new_ids, rows, new_weights):
            self._index.insert(tid, row, weight)
            self._rows[tid] = row
            self._weights[tid] = weight
            self._used_ids.add(tid)
        self._table = self._snapshot()
        self._index.reanchor(self._table)
        self._bracket_fresh = False
        self.stats.appends += 1
        self.stats.tuples_appended += len(rows)
        if self._pool_ready and self._pool is not None and self._pool.alive and rows:
            delta_rows = self._mirror_rows(new_ids)
            delta_weights = dict(zip(new_ids, new_weights))
            if not self._pool.broadcast(
                ("append", delta_rows, delta_weights), key=self._session_key
            ):
                self._drop_pool()
        return self.repair() if repair else None

    def delete(
        self, ids: Iterable[TupleId], repair: bool = True
    ) -> Optional[CleaningResult]:
        """Delete tuples by identifier; see :meth:`append` for *repair*."""
        ids = list(ids)
        missing = [tid for tid in ids if tid not in self._rows]
        if missing:
            raise KeyError(
                f"unknown identifiers: {sorted(map(str, missing))}"
            )
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate identifiers in delete")
        self._invalidate_components(ids)
        for tid in ids:
            self._index.remove(tid)
            del self._rows[tid]
            del self._weights[tid]
        self._table = self._snapshot()
        self._index.reanchor(self._table)
        self._bracket_fresh = False
        self.stats.deletes += 1
        self.stats.tuples_deleted += len(ids)
        if self._pool_ready and self._pool is not None and self._pool.alive and ids:
            if not self._pool.broadcast(
                ("delete", tuple(ids)), key=self._session_key
            ):
                self._drop_pool()
        return self.repair() if repair else None

    def _invalidate_components(self, ids: Iterable[TupleId]) -> None:
        """Drop reusable components that remember any of *ids*.

        The reuse map assumes a member's row and weight are fixed for as
        long as its id appears in a component key.  A deleted id — which
        may later be re-appended with different content — breaks that
        assumption, so every component holding one is forgotten before
        the delta applies.  O(conflicting tuples) scan, only run when a
        delta actually touches a previously-seen id.
        """
        touched = set(ids)
        stale = [
            key
            for key in self._component_reuse
            if not touched.isdisjoint(key)
        ]
        for key in stale:
            del self._component_reuse[key]
        stale_brackets = [
            key
            for key in self._bracket_by_key
            if not touched.isdisjoint(key)
        ]
        for key in stale_brackets:
            del self._bracket_by_key[key]

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _decompose(self) -> Decomposition:
        """The current decomposition, reusing untouched components.

        Components whose member-id tuple already exists in the reuse map
        keep their sub-table, (lazily-bucketed) sub-index, and content
        key; only components the delta actually changed are re-projected.
        The assembled :class:`Decomposition` is content-identical to
        :func:`repro.core.decompose.decompose` on the current snapshot —
        component order, member order, and sub-instances all match, so
        everything downstream stays byte-identical to the batch path.
        """
        rows = self._rows
        weights = self._weights
        components: List[Component] = []
        reuse: Dict[Tuple[TupleId, ...], Tuple[Component, Tuple]] = {}
        for ordinal, ids in enumerate(self._index.components()):
            key = tuple(ids)
            cached = self._component_reuse.get(key)
            if cached is None:
                subtable = self._table.subset(ids)
                subindex = self._index.project(subtable, set(ids))
                component = Component(ordinal, key, subtable, subindex)
                content = tuple((tid, rows[tid], weights[tid]) for tid in key)
                cached = (component, content)
            else:
                cached[0].ordinal = ordinal
            reuse[key] = cached
            components.append(cached[0])
        self._component_reuse = reuse
        return Decomposition(
            table=self._table,
            fds=self._fds,
            index=self._index,
            components=components,
            consistent_ids=tuple(self._index.consistent_ids()),
        )

    def _component_key(
        self,
        method: str,
        member_ids: Tuple[TupleId, ...],
        epoch: Optional[float] = None,
    ) -> Tuple:
        """Cache key of one component solve: ``(method, content)``, or
        ``(method, epoch, content)`` when *epoch* is given.  The epoch is
        the scheduled wall-clock slice of an exact solve under a global
        budget: whether such a solve succeeds (and stays sticky on
        fallback) depends on its slice, which shifts as the schedule
        around the component changes — keying on it keeps cached
        fallbacks honest.  Legacy (no global budget) keys are unchanged,
        so existing sticky-fallback behaviour is untouched."""
        cached = self._component_reuse.get(tuple(member_ids))
        if cached is not None:
            content = cached[1]
        else:
            rows = self._rows
            weights = self._weights
            content = tuple(
                (tid, rows[tid], weights[tid]) for tid in member_ids
            )
        if epoch is not None:
            return (method, epoch, content)
        return (method, content)

    def _cache_lookup(self, key: Tuple) -> Optional[_CachedSolve]:
        if self._shared_solutions is not None:
            return self._shared_solutions.get((self._cache_scope, key))
        entry = self._solutions.get(key)
        if entry is not None:
            # Refresh recency for the LRU eviction order.
            self._solutions[key] = self._solutions.pop(key)
        return entry

    def _cache_store(self, key: Tuple, entry: _CachedSolve) -> None:
        if self._shared_solutions is not None:
            self._shared_solutions.put((self._cache_scope, key), entry)
            return
        self._solutions[key] = entry
        cap = self._max_cache_entries
        if cap is not None:
            evicted = 0
            while len(self._solutions) > cap:
                self._solutions.pop(next(iter(self._solutions)))
                evicted += 1
            if evicted and self._recorder.enabled:
                self._recorder.count(
                    "session.cache_evict", evicted, key=self._session_key
                )

    def _effective_lower_bound(
        self, entry: _CachedSolve, component, plan
    ) -> Optional[float]:
        """The report lower bound one component contributes: the cached
        matching bound, tightened to the LP relaxation bound when the
        current plan qualifies (:func:`repro.pipeline._lp_qualifies`).
        The LP bound is memoised on the cache entry on first use; both
        bounds are pure functions of component content, so hit and miss
        paths — and the batch pipeline — report the same number."""
        bound = entry.lower_bound
        if bound is None or not _lp_qualifies(
            plan, component.size, self._threshold, self._guarantee
        ):
            return bound
        lp = entry.lp_bound
        if lp is None:
            lp = component.index.lp_lower_bound()
            if lp is not None:
                entry.lp_bound = lp
        if lp is not None and lp > bound:
            return lp
        return bound

    def _mirror_rows(self, ids: Iterable[TupleId]) -> Dict[TupleId, Row]:
        """The rows a worker mirror stores for *ids*: coded when the
        session's index carries a live codec, verbatim otherwise."""
        if self._pool_coded:
            coded_row = self._index._codec.coded_row
            return {tid: coded_row(tid) for tid in ids}
        rows = self._rows
        return {tid: rows[tid] for tid in ids}

    def _ensure_pool(self):
        if self._pool_disabled:
            return None
        if self._pool is None:
            # Owned pool: created lazily from the ``parallel`` knob and
            # bound to this session's namespace for its whole life.
            from .exec import PersistentWorkerPool

            # The namespace default budget is the *per-solve* ceiling:
            # globally-scheduled exact solves ship their slice per task,
            # so the namespace default only governs tasks without one.
            pool = PersistentWorkerPool(
                self._parallel, node_limit=self._node_limit,
                budget_s=self._per_component_budget_s,
            )
            if (
                pool.start()
                and pool.open_session(
                    self._session_key, self._schema, self._fds,
                    node_limit=self._node_limit,
                    budget_s=self._per_component_budget_s,
                )
                and pool.broadcast(
                    ("reset", self._mirror_rows(self._rows), dict(self._weights)),
                    key=self._session_key,
                )
            ):
                self._pool = pool
                self._pool_ready = True
            else:
                pool.close()
                self._pool_disabled = True
                self.stats.pool_fallbacks += 1
        elif not self._pool_ready:
            # Shared pool: attach this session's mirror namespace; the
            # full state ships once, deltas keep it synchronised.
            ok = (
                self._pool.start()
                and self._pool.open_session(
                    self._session_key, self._schema, self._fds,
                    node_limit=self._node_limit,
                    budget_s=self._per_component_budget_s,
                )
                and self._pool.broadcast(
                    ("reset", self._mirror_rows(self._rows), dict(self._weights)),
                    key=self._session_key,
                )
            )
            if ok:
                self._pool_ready = True
            else:
                self._pool_disabled = True
                self.stats.pool_fallbacks += 1
                return None
        if self._pool is not None and self._pool.alive:
            return self._pool
        return None

    def _drop_pool(self) -> None:
        """Stop using the pool: close it when owned, detach the mirror
        namespace when shared — a shared pool keeps serving its other
        sessions."""
        if self._pool is not None:
            if self._pool_owned:
                self._pool.close()
            elif self._pool_ready and self._pool.alive:
                self._pool.drop_session(self._session_key)
            self._pool = None
        self._pool_ready = False
        self._pool_disabled = True
        self.stats.pool_fallbacks += 1

    def _solve_misses(
        self, misses: List[Tuple[int, object, object]]
    ) -> Dict[int, Tuple[Tuple[TupleId, ...], str, float]]:
        """Solve the cache-missed components; returns ordinal →
        ``(kept ids, effective method, solve seconds)`` (effective ≠
        planned exactly when an exact solve fell back under its
        wall-clock budget).

        Each miss carries its :class:`~repro.core.decompose.ComponentPlan`;
        a plan with a budget ships it per task (the globally-scheduled
        slice, or the per-solve ceiling on the legacy path), one without
        defers to the worker namespace default.  On the warm pool when
        available (ids-only payloads), in-process otherwise; any pool
        failure falls back serially — the solvers are pure and the plan
        is the same either way, so the retry is safe and byte-identical.

        With an enabled recorder, each miss emits one ``solve`` trace
        record carrying the plan evidence and the measured seconds —
        timed inside the worker on the pool path, in-process on the
        serial path (where an untraced run skips the clock entirely).
        """
        from .exec import _solve_s_kept

        rec = self._recorder
        solved: Dict[int, Tuple[Tuple[TupleId, ...], str, float]] = {}
        # An owned pool pays off once a batch has ≥ 2 misses; a shared
        # (daemon) pool is offloaded even for a single miss, so a slow
        # solve runs in a worker process and the caller's thread only
        # waits — keeping the daemon's event loop and every co-tenant
        # session responsive.
        want_pool = bool(misses) and (
            not self._pool_owned
            or (self._parallel is not None and self._parallel > 1
                and len(misses) > 1)
        )
        if want_pool:
            pool = self._ensure_pool()
            if pool is not None:
                tasks = [
                    (c.ids, plan.method) if plan.budget_s is None
                    else (c.ids, plan.method, plan.budget_s)
                    for _i, c, plan in misses
                ]
                try:
                    outcomes = pool.solve(
                        tasks,
                        timeout=self._pool_timeout,
                        key=self._session_key,
                    )
                except RuntimeError:
                    if pool.alive:
                        # One failed batch (worker-side exception or
                        # timeout): re-solve serially below, keep the
                        # pool for the next repair.
                        self.stats.pool_fallbacks += 1
                    else:
                        self._drop_pool()
                else:
                    for (i, _c, _p), outcome in zip(misses, outcomes):
                        solved[i] = outcome
                    self.stats.pool_solves += len(misses)
                    if rec.enabled:
                        self._record_solves(misses, solved, "pool")
                    return solved
        timed = rec.enabled
        for i, component, plan in misses:
            start = _perf_counter() if timed else 0.0
            kept, effective = _solve_s_kept(
                component.table,
                self._fds,
                plan.method,
                self._node_limit,
                index=component.index,
                budget_s=plan.budget_s,
            )
            elapsed = _perf_counter() - start if timed else 0.0
            solved[i] = (tuple(kept), effective, elapsed)
            self.stats.serial_solves += 1
        if rec.enabled:
            self._record_solves(misses, solved, "serial")
        return solved

    def _record_solves(self, misses, solved, path: str) -> None:
        """Emit one ``solve`` trace record per cache miss (plan evidence,
        effective method, measured seconds, serial-vs-pool path)."""
        for i, component, plan in misses:
            _kept, effective, secs = solved[i]
            self._recorder.solve_record(
                ordinal=i,
                size=component.size,
                edges=component.index.num_edges,
                planned=plan.method,
                effective=effective,
                actual_s=secs,
                path=path,
                context="session",
                plan=plan,
                key=str(self._session_key),
            )

    def repair(self) -> CleaningResult:
        """Re-repair the current table, re-solving only the components
        the deltas since the last call actually changed.

        The result is byte-identical to
        ``pipeline.clean(session.table, fds, guarantee=..., parallel=...,
        exact_threshold=..., exact_budget_s=...,
        per_component_budget_s=...)`` — same cleaned table, distance,
        dirtiness report, and portfolio label.  The schedule is re-planned
        per call (it is pure arithmetic over the current components);
        under a global budget an exact solve's cache key carries its
        scheduled slice, so a slice change — the schedule shifting as
        components come and go — re-solves rather than serving a result
        computed under a different ceiling.
        """
        rec = self._recorder
        with rec.span("session.repair", key=str(self._session_key)):
            with rec.span("phase.decompose"):
                decomp = self._decompose()
            with rec.span("phase.plan"):
                plans = decomp.plan_schedule(
                    self._verdict.tractable,
                    self._guarantee,
                    self._threshold,
                    self._exact_budget_s,
                    self._per_component_budget_s,
                    self._node_limit,
                    self._unit_cost_s,
                )
            methods = [plan.method for plan in plans]
            kept_lists: List[Optional[Tuple[TupleId, ...]]] = (
                [None] * len(methods)
            )
            lower_bounds: List[Optional[float]] = [None] * len(methods)
            misses: List[Tuple[int, object, object]] = []
            keys: Dict[int, Tuple] = {}
            for i, (component, plan) in enumerate(
                zip(decomp.components, plans)
            ):
                epoch = (
                    plan.budget_s
                    if self._exact_budget_s is not None
                    and plan.method == "exact"
                    else None
                )
                key = self._component_key(plan.method, component.ids, epoch)
                keys[i] = key
                entry = self._cache_lookup(key)
                if entry is None:
                    misses.append((i, component, plan))
                else:
                    kept_lists[i] = entry.kept
                    lower_bounds[i] = self._effective_lower_bound(
                        entry, component, plan
                    )
                    methods[i] = entry.method
                    self.stats.cache_hits += 1
            if rec.enabled:
                session_tag = str(self._session_key)
                hits = len(methods) - len(misses)
                if hits:
                    rec.count("session.cache_hit", hits, key=session_tag)
                if misses:
                    rec.count(
                        "session.cache_miss", len(misses), key=session_tag
                    )
            with rec.span("phase.solve"):
                solved = self._solve_misses(misses)
            with rec.span("phase.merge"):
                for i, component, plan in misses:
                    kept, effective, _secs = solved[i]
                    kept_lists[i] = kept
                    methods[i] = effective
                    bound = (
                        component.index.matching_lower_bound()
                        if effective == "approx"
                        else None
                    )
                    entry = _CachedSolve(kept, effective, bound)
                    lower_bounds[i] = self._effective_lower_bound(
                        entry, component, plan
                    )
                    self._cache_store(keys[i], entry)
                    self.stats.cache_misses += 1
                result = _decomposed_outcome(
                    decomp, self._verdict, methods, kept_lists,
                    self._parallel, lower_bounds,
                )
        self.stats.repairs += 1
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    # Solver-free status: the delta-maintained dirtiness bracket
    # ------------------------------------------------------------------
    def _refresh_bracket(self) -> None:
        """Bring the per-component bracket cache up to date.

        Components whose member-id tuple survives from the last reading
        keep their cached ``[matching, BYE]`` bracket (member content is
        immutable while an id lives, and recycled ids invalidate their
        components eagerly — the same contract the component-reuse map
        relies on); only delta-touched components recompute, via one
        polynomial matching + Bar-Yehuda–Even pass each.  Projections
        are shared with :meth:`_decompose`'s reuse map, so a status
        reading right after a repair touches nothing at all.
        """
        if self._bracket_fresh:
            return
        fresh: Dict[Tuple[TupleId, ...], Tuple[float, float]] = {}
        lower = upper = 0.0
        for ids in self._index.components():
            key = tuple(ids)
            entry = self._bracket_by_key.get(key)
            if entry is None:
                cached = self._component_reuse.get(key)
                if cached is not None:
                    subtable, subindex = cached[0].table, cached[0].index
                else:
                    subtable = self._table.subset(key)
                    subindex = self._index.project(subtable, set(key))
                entry = _bracket_component(subindex, subtable)
            fresh[key] = entry
            lower += entry[0]
            upper += entry[1]
        self._bracket_by_key = fresh
        self._bracket_totals = (lower, upper)
        self._bracket_fresh = True

    def status(self) -> SessionStatus:
        """A dirtiness snapshot served without touching any solver.

        The bracket is the delta-maintained per-component polynomial
        ``[matching lower bound, Bar-Yehuda–Even upper bound]`` sum —
        the optimal deletion cost provably lies inside it — and every
        other field reads O(1) bookkeeping.  A monitoring endpoint can
        therefore poll ``status`` at any rate without ever queueing
        behind (or triggering) exact solves.
        """
        self._refresh_bracket()
        lower, upper = self._bracket_totals
        return SessionStatus(
            tuples=len(self._rows),
            total_weight=self._table.total_weight(),
            conflicts=self._index.num_edges,
            conflicting_tuples=len(self._index.conflicting_tuples()),
            components=len(self._bracket_by_key),
            lower_bound=lower,
            upper_bound=upper,
            cache_entries=self.cache_size(),
            repairs=self.stats.repairs,
        )

    # ------------------------------------------------------------------
    # Serialisation: eviction and rehydration
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """A picklable snapshot from which :meth:`restore` rebuilds an
        equivalent session.

        Engine *state* serialises — rows, weights (in insertion order,
        which the mirrors and solvers observe), id-allocator bookkeeping,
        options, stats, and the private component cache.  Process
        *lifecycle* does not: pools and shared caches re-attach on
        restore, and the conflict index, kernel view, and component
        structures rebuild on demand (a rebuild equals the
        live-maintained index by the PR-1/PR-3 algebra properties, so a
        rehydrated session's repairs stay byte-identical to one that was
        never evicted).  Sessions on a shared :class:`SolutionCache`
        export no cache entries at all — their solves survive eviction
        *in the cache itself*, which is the point of content addressing.
        """
        return {
            "version": 1,
            "schema": self._schema,
            "name": self._name,
            "fds": self._fds,
            "rows": dict(self._rows),
            "weights": dict(self._weights),
            "used_ids": set(self._used_ids),
            "next_auto_id": self._next_auto_id,
            "options": {
                "guarantee": self._guarantee,
                "exact_threshold": self._threshold,
                "exact_budget_s": self._exact_budget_s,
                "per_component_budget_s": self._per_component_budget_s,
                "unit_cost_s": self._unit_cost_s,
                "parallel": self._parallel,
                "node_limit": self._node_limit,
                "max_cache_entries": self._max_cache_entries,
                "pool_timeout": self._pool_timeout,
            },
            "solutions": (
                dict(self._solutions) if self._shared_solutions is None else {}
            ),
            "stats": asdict(self.stats),
        }

    @classmethod
    def restore(
        cls,
        state: Mapping[str, object],
        *,
        pool=None,
        session_key: Optional[str] = None,
        solutions: Optional[SolutionCache] = None,
        recorder=None,
    ) -> "RepairSession":
        """Rebuild a session from :meth:`export_state` output, attaching
        it to the given (possibly shared) pool, solution cache, and
        recorder (recorders are process-lifecycle, not engine state, so
        they re-attach like pools rather than serialising)."""
        schema = tuple(state["schema"])
        table = Table._from_trusted(
            schema,
            dict(state["rows"]),
            dict(state["weights"]),
            state["name"],
            {a: i for i, a in enumerate(schema)},
        )
        session = cls(
            table,
            state["fds"],
            pool=pool,
            session_key=session_key,
            solutions=solutions,
            recorder=recorder,
            **state["options"],
        )
        session._used_ids |= set(state["used_ids"])
        # Adopt the exported allocator reading *exactly* (the
        # constructor recomputes a floor from the rows, which can sit
        # above a live session that only ever saw explicit ids).  Safe:
        # allocation skips ``_used_ids``, which the union above makes a
        # superset of every id this session ever issued — and exactness
        # keeps a rehydrated session's future auto ids byte-identical
        # to one that was never evicted.
        session._next_auto_id = int(state["next_auto_id"])
        if solutions is None:
            session._solutions.update(state["solutions"])
        session.stats = SessionStats(**state["stats"])
        return session

    def approx_bytes(self) -> int:
        """A cheap resident-memory estimate for admission control.

        Counts the dominant structures — rows, the conflict index +
        kernel view (both scale with the row count), and the private
        component cache — at calibrated per-entry costs rather than
        walking objects with ``sys.getsizeof`` (which would cost more
        than the eviction decision it feeds).  Entries on a shared
        :class:`SolutionCache` are accounted by the cache owner, not per
        session.
        """
        arity = len(self._schema)
        per_tuple = 120 + 64 * arity
        index_factor = 3  # rows + live index + kernel/codec arrays
        cached = (
            0
            if self._shared_solutions is not None
            else len(self._solutions) * (160 + 48 * arity)
        )
        return 512 + len(self._rows) * per_tuple * index_factor + cached

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (the session stays usable serially).
        An owned pool is stopped; a shared pool only sheds this
        session's mirror namespace and keeps serving other sessions."""
        if self._pool is not None:
            if self._pool_owned:
                self._pool.close()
            elif self._pool_ready and self._pool.alive:
                self._pool.drop_session(self._session_key)
            self._pool = None
        self._pool_ready = False
        self._pool_disabled = True

    def __enter__(self) -> "RepairSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RepairSession({len(self)} tuples, {self._fds}, "
            f"{self._index.num_edges} conflicts, "
            f"cache={len(self._solutions)})"
        )
