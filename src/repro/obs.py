"""``repro.obs``: zero-dependency structured telemetry.

The difficulty scheduler (PR 7) turned repair into a predict-then-spend
loop: :func:`repro.core.decompose.predict_difficulty` prices each
component, the budget is rationed on those prices, and a misprediction
silently burns the residual budget of the whole run.  Closing that loop
needs *data* — predicted vs. actual solve seconds, where wall-clock goes
inside a ``clean``, why the daemon evicted a tenant — which is exactly
what this module records.

Three layers, all dependency-free and thread-safe:

:class:`Recorder`
    Nested spans (monotonic-clock start/duration, tags, thread-local
    nesting), counters, gauges, and fixed-bucket latency histograms.
    Aggregates in memory (span rollups, counter totals) and — when
    constructed with a sink — streams span/solve/op events as JSON
    lines.  One recorder may be shared by many sessions/threads: every
    aggregate mutation takes the recorder's lock, span nesting lives in
    thread-local storage, and the sink serialises its writes.

:data:`NULL_RECORDER`
    The guaranteed-no-op default.  Every instrumented hot path guards
    per-item work with ``if recorder.enabled:``, so an uninstrumented
    run pays one attribute read per guard — nothing else.  ``enabled``
    is a class attribute (``False``), not state: a ``NullRecorder`` can
    never be switched on, which is what makes the no-op guarantee a
    type-level fact rather than a convention.

:class:`JsonlTraceSink`
    A thread-safe append-only JSONL file.  Events buffer through the
    file object's own buffering and flush on :meth:`close` (the
    recorder writes a final ``summary`` record — counter totals,
    gauges, histograms — before closing, so a trace file is
    self-contained).

Trace record schema (one JSON object per line; all optional fields may
be absent):

``{"type": "span", "ts", "name", "dur_s", "depth", "parent", "tags"}``
    One finished span.  ``ts`` is the wall-clock completion time
    (``time.time()``); ``dur_s`` the monotonic-clock duration;
    ``depth``/``parent`` encode the nesting at completion.  Phase spans
    are named ``phase.<index|decompose|plan|solve|merge>`` under a root
    ``pipeline.clean`` / ``pipeline.assess`` / ``session.repair`` span.

``{"type": "solve", "ts", "ordinal", "size", "edges", "planned",
"method", "difficulty", "predicted_s", "budget_s", "downgraded",
"budget_exhausted", "actual_s", "path", "context", "key", "density",
"weight_spread", "gap_rel"}``
    One per-component solve: the :class:`~repro.core.decompose.ComponentPlan`
    evidence (``difficulty``/``predicted_s``/``budget_s``/``downgraded``
    and the feature triple, present when the global scheduler computed
    features), the *effective* method (``budget_exhausted`` marks an
    exact solve that fell back under its slice), and the measured
    ``actual_s`` — on the ``"serial"`` path timed in-process, on the
    ``"pool"`` path timed inside the worker and shipped back in the
    result tuple.  These records are :func:`calibrate_trace`'s training
    set.

``{"type": "op", "ts", "op", "tenant", "session", "dur_s", "ok"}``
    One daemon request, recorded by :class:`repro.server.RepairServer`.

``{"type": "summary", "ts", "counters", "tagged", "gauges",
"histograms", "spans"}``
    The recorder's aggregate snapshot, written once on :meth:`Recorder.close`
    — counter totals (cache hits/misses/evictions, per-tenant ops),
    per-op latency histograms, and the span rollup.  Counters stream as
    aggregates rather than per-increment lines so a million-delta
    stream leaves a kilobyte of counter data, not a gigabyte.

:func:`summarize_trace` rolls a trace back up (phases, methods,
tenants, ops) and :func:`calibrate_trace` fits
:data:`~repro.core.decompose.DIFFICULTY_UNIT_COST_S` — and optionally
the difficulty exponent — by least squares in log space over the
trace's predicted-vs-actual pairs; both power the ``fdrepair trace
summarize`` and ``fdrepair calibrate`` CLI verbs.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "HIST_BOUNDS_S",
    "NULL_RECORDER",
    "JsonlTraceSink",
    "NullRecorder",
    "Recorder",
    "calibrate_trace",
    "read_trace",
    "resolve",
    "summarize_trace",
]

#: Latency histogram bucket upper bounds, in seconds (log-spaced; one
#: overflow bucket above the last bound).  Fixed so histograms from any
#: two runs are mergeable bucket-for-bucket.
HIST_BOUNDS_S = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)

#: The canonical phase names every instrumented entry point uses, in
#: pipeline order — the vocabulary :meth:`Recorder.phase_breakdown` and
#: ``fdrepair trace summarize`` roll spans up into.
PHASES = ("index", "decompose", "plan", "solve", "merge")


class NullRecorder:
    """The guaranteed-no-op recorder: every method does nothing, and
    ``enabled`` is a *class* attribute fixed at ``False`` — hot paths
    guard on it and pay one attribute read when uninstrumented."""

    enabled = False
    __slots__ = ()

    def span(self, name: str, **tags):
        return _NOOP_SPAN

    def count(self, name: str, n: int = 1, **tags) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def record(self, type_: str, **fields) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {}

    def phase_breakdown(self) -> Dict[str, Dict[str, float]]:
        return {}

    def close(self) -> None:
        pass


class _NoopSpan:
    """The shared context manager :meth:`NullRecorder.span` hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NOOP_SPAN = _NoopSpan()

#: The module-wide no-op default every ``recorder=None`` resolves to.
NULL_RECORDER = NullRecorder()


def resolve(recorder) -> "Recorder":
    """``None`` → :data:`NULL_RECORDER`; anything else passes through.
    The one line every instrumented entry point starts with."""
    return NULL_RECORDER if recorder is None else recorder


class JsonlTraceSink:
    """A thread-safe append-only JSONL event sink.

    Writes are serialised under a lock (recorders shared across daemon
    executor threads and session threads funnel through one file) and
    buffered by the file object; :meth:`close` flushes.  Non-JSON-able
    values are stringified rather than failing the traced operation —
    telemetry must never take the pipeline down with it.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._closed = False

    def write(self, record: Mapping[str, object]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._closed:
                return
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.flush()
            finally:
                self._handle.close()

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Hist:
    """Fixed-bucket latency histogram (see :data:`HIST_BOUNDS_S`)."""

    __slots__ = ("count", "total", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.buckets = [0] * (len(HIST_BOUNDS_S) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(HIST_BOUNDS_S):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def as_dict(self) -> Dict[str, object]:
        labels = [f"le_{b:g}" for b in HIST_BOUNDS_S] + ["inf"]
        return {
            "count": self.count,
            "total_s": round(self.total, 6),
            "max_s": round(self.max, 6),
            "mean_s": round(self.total / self.count, 6) if self.count else 0.0,
            "buckets": dict(zip(labels, self.buckets)),
        }


class _Span:
    """One live span: pushes itself on the thread-local stack on entry,
    reports duration + nesting to the recorder on exit."""

    __slots__ = ("_rec", "name", "tags", "_start", "_depth", "_parent")

    def __init__(self, rec: "Recorder", name: str, tags: Dict[str, object]):
        self._rec = rec
        self.name = name
        self.tags = tags

    def __enter__(self) -> "_Span":
        stack = self._rec._stack()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        dur = time.perf_counter() - self._start
        stack = self._rec._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._rec._finish_span(
            self.name, dur, self._depth, self._parent, self.tags
        )


class Recorder:
    """A live telemetry recorder: spans + counters + gauges + histograms,
    aggregated in memory and (optionally) streamed to a JSONL *sink*.

    Safe to share across threads and sessions: aggregate mutations take
    one lock, span nesting is thread-local, and the sink locks its own
    writes.  Construct with ``sink=None`` for aggregation-only use (the
    daemon's default: ``stats`` reads the aggregates, nothing hits
    disk) or with a :class:`JsonlTraceSink` for full tracing
    (``--trace PATH``).
    """

    enabled = True

    def __init__(self, sink: Optional[JsonlTraceSink] = None) -> None:
        self._sink = sink
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counters: Dict[str, float] = {}
        self._tagged: Dict[Tuple[str, Tuple[Tuple[str, object], ...]], float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, _Hist] = {}
        # span name -> [count, total_s, max_s]
        self._spans: Dict[str, List[float]] = {}
        self._closed = False

    # -- spans ----------------------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags) -> _Span:
        """A context manager timing one named span.  Nesting is tracked
        per thread; the finished span aggregates into the in-memory
        rollup and streams to the sink (if any) with its depth, parent
        span name, and tags."""
        return _Span(self, name, tags)

    def _finish_span(
        self,
        name: str,
        dur_s: float,
        depth: int,
        parent: Optional[str],
        tags: Dict[str, object],
    ) -> None:
        with self._lock:
            agg = self._spans.get(name)
            if agg is None:
                agg = self._spans[name] = [0, 0.0, 0.0]
            agg[0] += 1
            agg[1] += dur_s
            if dur_s > agg[2]:
                agg[2] = dur_s
        if self._sink is not None:
            record: Dict[str, object] = {
                "type": "span",
                "ts": round(time.time(), 6),
                "name": name,
                "dur_s": round(dur_s, 6),
                "depth": depth,
            }
            if parent is not None:
                record["parent"] = parent
            if tags:
                record["tags"] = tags
            self._sink.write(record)

    # -- counters / gauges / histograms --------------------------------
    def count(self, name: str, n: int = 1, **tags) -> None:
        """Increment counter *name* by *n*.  With *tags*, the tagged
        series ``(name, tags)`` is additionally incremented — how the
        daemon keeps per-tenant op counts under one counter name."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
            if tags:
                key = (name, tuple(sorted(tags.items())))
                self._tagged[key] = self._tagged.get(key, 0) + n

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Add one observation to latency histogram *name*."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = _Hist()
            hist.observe(seconds)

    def tag_totals(self, name: str, tag: str) -> Dict[str, float]:
        """Totals of counter *name* broken down by *tag*'s values."""
        out: Dict[str, float] = {}
        with self._lock:
            for (cname, tags), n in self._tagged.items():
                if cname != name:
                    continue
                for key, value in tags:
                    if key == tag:
                        out[str(value)] = out.get(str(value), 0) + n
        return out

    # -- events ---------------------------------------------------------
    def record(self, type_: str, **fields) -> None:
        """Stream one raw event record (e.g. a per-component ``solve``
        record) to the sink; a sink-less recorder drops it.  ``None``
        fields are elided so traces stay compact."""
        if self._sink is None:
            return
        record: Dict[str, object] = {
            "type": type_,
            "ts": round(time.time(), 6),
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        self._sink.write(record)

    def solve_record(
        self,
        *,
        ordinal: int,
        size: int,
        edges: int,
        planned: str,
        effective: str,
        actual_s: float,
        path: str,
        context: str,
        plan=None,
        key: Optional[str] = None,
    ) -> None:
        """One per-component solve record — the calibration training
        row.  *plan* is the :class:`~repro.core.decompose.ComponentPlan`
        (its difficulty evidence and budget slice are carried when
        present; ``features`` contributes the density / weight-spread /
        relative-gap triple)."""
        fields: Dict[str, object] = {
            "ordinal": ordinal,
            "size": size,
            "edges": edges,
            "planned": planned,
            "method": effective,
            "actual_s": round(actual_s, 6),
            "path": path,
            "context": context,
            "key": key,
        }
        if planned != effective:
            fields["budget_exhausted"] = True
        if plan is not None:
            fields["difficulty"] = plan.difficulty
            fields["predicted_s"] = plan.predicted_s
            fields["budget_s"] = plan.budget_s
            if plan.downgraded:
                fields["downgraded"] = True
            feats = plan.features
            if feats is not None:
                fields["density"] = round(feats.density, 6)
                fields["weight_spread"] = round(feats.weight_spread, 6)
                fields["gap_rel"] = round(feats.gap_rel, 6)
        self.record("solve", **fields)

    # -- aggregates -----------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The in-memory aggregates as one JSON-able dict."""
        with self._lock:
            counters = dict(self._counters)
            tagged = {
                f"{name}[{','.join(f'{k}={v}' for k, v in tags)}]": n
                for (name, tags), n in self._tagged.items()
            }
            gauges = dict(self._gauges)
            hists = {name: h.as_dict() for name, h in self._hists.items()}
            spans = {
                name: {
                    "count": int(agg[0]),
                    "total_s": round(agg[1], 6),
                    "max_s": round(agg[2], 6),
                }
                for name, agg in self._spans.items()
            }
        return {
            "counters": counters,
            "tagged": tagged,
            "gauges": gauges,
            "histograms": hists,
            "spans": spans,
        }

    def histograms(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {name: h.as_dict() for name, h in self._hists.items()}

    def phase_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Span rollup restricted to the canonical ``phase.*`` names, in
        pipeline order — where the wall-clock of a traced run went."""
        snap = self.snapshot()["spans"]
        return {
            phase: snap[f"phase.{phase}"]
            for phase in PHASES
            if f"phase.{phase}" in snap
        }

    def close(self) -> None:
        """Write the aggregate ``summary`` record and close the sink.
        Idempotent; a sink-less recorder just marks itself closed."""
        if self._closed:
            return
        self._closed = True
        if self._sink is not None:
            self.record("summary", **self.snapshot())
            self._sink.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Trace analysis: summarize + calibrate (the CLI verbs' engines)
# ---------------------------------------------------------------------------

def read_trace(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL trace file, skipping malformed lines (a crashed
    writer may leave a torn final line; analysis should survive it)."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            if isinstance(obj, dict) and "type" in obj:
                records.append(obj)
    return records


def _merge_counters(target: Dict[str, float], source: Mapping) -> None:
    for name, n in source.items():
        if isinstance(n, (int, float)):
            target[name] = target.get(name, 0) + n


def summarize_trace(records: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Roll a trace up into phase / span / method / tenant / op tables.

    Returns a JSON-able dict:

    * ``phases`` — wall-clock per canonical pipeline phase (count,
      total, max, share of the summed phase time);
    * ``spans`` — the full span rollup by name;
    * ``methods`` — per effective solve method: solve count, total and
      max actual seconds, budget-exhaustion count, and predicted-vs-
      actual totals where predictions were recorded;
    * ``tenants`` — per-tenant daemon op counts and seconds (from
      ``op`` records);
    * ``ops`` — per-op counts and latency totals;
    * ``counters`` — merged counter totals from ``summary`` records.
    """
    spans: Dict[str, List[float]] = {}
    methods: Dict[str, Dict[str, float]] = {}
    tenants: Dict[str, Dict[str, float]] = {}
    ops: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, float] = {}
    solves = 0
    for record in records:
        rtype = record.get("type")
        if rtype == "span":
            name = str(record.get("name"))
            dur = float(record.get("dur_s", 0.0))
            agg = spans.setdefault(name, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += dur
            if dur > agg[2]:
                agg[2] = dur
        elif rtype == "solve":
            solves += 1
            method = str(record.get("method", "?"))
            entry = methods.setdefault(
                method,
                {
                    "solves": 0,
                    "actual_s": 0.0,
                    "max_s": 0.0,
                    "budget_exhausted": 0,
                    "predicted_s": 0.0,
                    "predicted_pairs": 0,
                    "predicted_actual_s": 0.0,
                },
            )
            actual = float(record.get("actual_s", 0.0))
            entry["solves"] += 1
            entry["actual_s"] += actual
            if actual > entry["max_s"]:
                entry["max_s"] = actual
            if record.get("budget_exhausted"):
                entry["budget_exhausted"] += 1
            predicted = record.get("predicted_s")
            if isinstance(predicted, (int, float)):
                entry["predicted_s"] += predicted
                entry["predicted_pairs"] += 1
                entry["predicted_actual_s"] += actual
        elif rtype == "op":
            op = str(record.get("op", "?"))
            dur = float(record.get("dur_s", 0.0))
            tenant = record.get("tenant")
            op_entry = ops.setdefault(op, {"count": 0, "total_s": 0.0, "errors": 0})
            op_entry["count"] += 1
            op_entry["total_s"] += dur
            if record.get("ok") is False:
                op_entry["errors"] += 1
            if tenant:
                t_entry = tenants.setdefault(
                    str(tenant), {"ops": 0, "total_s": 0.0}
                )
                t_entry["ops"] += 1
                t_entry["total_s"] += dur
        elif rtype == "summary":
            summary_counters = record.get("counters")
            if isinstance(summary_counters, Mapping):
                _merge_counters(counters, summary_counters)
    phase_total = sum(
        spans[f"phase.{p}"][1] for p in PHASES if f"phase.{p}" in spans
    )
    phases = {}
    for phase in PHASES:
        agg = spans.get(f"phase.{phase}")
        if agg is None:
            continue
        phases[phase] = {
            "count": int(agg[0]),
            "total_s": round(agg[1], 6),
            "max_s": round(agg[2], 6),
            "share": round(agg[1] / phase_total, 4) if phase_total else 0.0,
        }
    for entry in methods.values():
        for field in ("actual_s", "max_s", "predicted_s", "predicted_actual_s"):
            entry[field] = round(entry[field], 6)
    for table in (tenants, ops):
        for entry in table.values():
            entry["total_s"] = round(entry["total_s"], 6)
    return {
        "phases": phases,
        "spans": {
            name: {
                "count": int(agg[0]),
                "total_s": round(agg[1], 6),
                "max_s": round(agg[2], 6),
            }
            for name, agg in sorted(spans.items())
        },
        "methods": methods,
        "tenants": tenants,
        "ops": ops,
        "counters": counters,
        "solves": solves,
    }


def _mean_relative_error(
    pairs: List[Tuple[float, float]], unit_cost: float, exponent: float = 1.0
) -> float:
    return sum(
        abs(unit_cost * d ** exponent - a) / a for d, a in pairs
    ) / len(pairs)


def calibrate_trace(
    records: Iterable[Mapping[str, object]],
    hand_unit_cost: Optional[float] = None,
    fit_exponent: bool = False,
) -> Dict[str, object]:
    """Fit the difficulty model's seconds-per-unit constant from a trace.

    The training rows are the ``solve`` records whose effective method
    is ``"exact"`` and that carry both a positive predicted
    ``difficulty`` and a positive measured ``actual_s`` — i.e. exactly
    the schedule/outcome pairs the ROADMAP's learned-cost-model item
    asks to log.  The fit is least squares **in log space**: with the
    model ``actual ≈ c · difficulty``, the optimal ``log c`` is the
    mean log-ratio ``mean(log actual − log difficulty)`` (the geometric
    mean of the observed per-unit costs) — the natural objective when
    solve times span orders of magnitude and the error that matters is
    *relative*, which is how the scheduler consumes predictions.  With
    ``fit_exponent=True`` the two-parameter model
    ``actual ≈ c · difficulty^γ`` is fit by ordinary least squares on
    ``(log difficulty, log actual)``.

    Returns a JSON-able report: the pair count, the hand-calibrated
    constant (default :data:`~repro.core.decompose.DIFFICULTY_UNIT_COST_S`)
    and its mean relative prediction error on the trace, the fitted
    constant and its error, and — when requested and identifiable — the
    fitted exponent model and its error.  With no usable pairs the
    report carries ``pairs: 0`` and no fit.
    """
    from .core.decompose import DIFFICULTY_UNIT_COST_S

    if hand_unit_cost is None:
        hand_unit_cost = DIFFICULTY_UNIT_COST_S
    pairs: List[Tuple[float, float]] = []
    for record in records:
        if record.get("type") != "solve" or record.get("method") != "exact":
            continue
        difficulty = record.get("difficulty")
        actual = record.get("actual_s")
        if (
            isinstance(difficulty, (int, float))
            and isinstance(actual, (int, float))
            and difficulty > 0
            and actual > 0
        ):
            pairs.append((float(difficulty), float(actual)))
    report: Dict[str, object] = {
        "pairs": len(pairs),
        "hand_unit_cost_s": hand_unit_cost,
    }
    if not pairs:
        return report
    log_ratios = [math.log(a) - math.log(d) for d, a in pairs]
    fitted = math.exp(sum(log_ratios) / len(log_ratios))
    report["hand_mean_rel_error"] = round(
        _mean_relative_error(pairs, hand_unit_cost), 6
    )
    report["unit_cost_s"] = fitted
    report["mean_rel_error"] = round(_mean_relative_error(pairs, fitted), 6)
    if fit_exponent and len(pairs) >= 2:
        log_d = [math.log(d) for d, _a in pairs]
        log_a = [math.log(a) for _d, a in pairs]
        mean_d = sum(log_d) / len(log_d)
        mean_a = sum(log_a) / len(log_a)
        var_d = sum((x - mean_d) ** 2 for x in log_d)
        if var_d > 0:
            gamma = sum(
                (x - mean_d) * (y - mean_a) for x, y in zip(log_d, log_a)
            ) / var_d
            c_exp = math.exp(mean_a - gamma * mean_d)
            report["exponent"] = round(gamma, 6)
            report["exponent_unit_cost_s"] = c_exp
            report["exponent_mean_rel_error"] = round(
                _mean_relative_error(pairs, c_exp, gamma), 6
            )
    return report
