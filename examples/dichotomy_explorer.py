"""Explore the S-repair dichotomy over a catalogue of FD sets.

For each FD set: the PTIME/APX-complete verdict, the Example 3.5-style
simplification trace, and — on the hard side — the Figure 2 class with
its fact-wise reduction source (Table 1).  For one hard set we also
materialise the fact-wise reduction and demonstrate the strict cost
transfer on a concrete table.

Run with::

    python examples/dichotomy_explorer.py [extra FD sets...]

e.g. ``python examples/dichotomy_explorer.py "A B -> C; C -> D"``.
"""

import sys

from repro import FDSet, Table, classify, exact_s_repair
from repro.reductions import reduction_for_witness

CATALOGUE = {
    "running example": "facility -> city; facility room -> floor",
    "Δ_{A↔B→C} (Ex 3.1)": "A -> B; B -> A; B -> C",
    "ssn Δ1 (Ex 3.1)": (
        "ssn -> first; ssn -> last; first last -> ssn; ssn -> address; "
        "ssn office -> phone; ssn office -> fax"
    ),
    "Δ_{A→B→C} (Table 1)": "A -> B; B -> C",
    "Δ_{A→C←B} (Table 1)": "A -> C; B -> C",
    "Δ_{AB→C→B} (Table 1)": "A B -> C; C -> B",
    "Δ_{AB↔AC↔BC} (Table 1)": "A B -> C; A C -> B; B C -> A",
    "Ex 3.8 class 1": "A -> B; C -> D",
    "Ex 3.8 class 5": "A B -> C; C -> A D",
    "zip codes (Ex 4.7)": "state city -> zip; state zip -> country",
}


def explore(name: str, fd_text: str) -> None:
    fds = FDSet(fd_text)
    result = classify(fds)
    print(f"\n--- {name}: {fds}")
    print(f"verdict: {result.complexity}")
    for line in result.trace_lines():
        print(f"  {line}")
    if result.witness is not None:
        print(f"hardness witness: {result.witness}")


def demonstrate_reduction() -> None:
    fds = FDSet("A -> B; B -> C")
    result = classify(fds)
    red = reduction_for_witness(("A", "B", "C"), result.residual, result.witness)
    print(f"\n=== strict reduction demo: {red.name} ===")
    print(f"source: {red.source_fds} over R(A, B, C)")
    print(f"target: {red.target_fds}")
    source = Table.from_rows(
        ("A", "B", "C"),
        [(0, 0, 0), (0, 0, 1), (0, 1, 0), (1, 1, 0)],
    )
    target = red.map_table(source)
    print("\nsource table → mapped table:")
    for tid in source.ids():
        print(f"  {source[tid]}  →  {target[tid]}")
    source_cost = source.dist_sub(exact_s_repair(source, red.source_fds))
    target_cost = target.dist_sub(exact_s_repair(target, red.target_fds))
    print(
        f"\noptimal S-repair cost: source {source_cost:g}, "
        f"target {target_cost:g}  (strictness: equal)"
    )


def main() -> None:
    for name, text in CATALOGUE.items():
        explore(name, text)
    for extra in sys.argv[1:]:
        explore("user-supplied", extra)
    demonstrate_reduction()


if __name__ == "__main__":
    main()
