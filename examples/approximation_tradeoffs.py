"""Compare U-repair approximation guarantees (Section 4.4).

Prints the paper's headline table: on the family ``Δ_k`` our ``2·mlc``
guarantee grows linearly while Kolahi–Lakshmanan's
``(MCI+2)(2·MFS−1)`` grows quadratically; on ``Δ'_k`` the roles flip.
Then measures the *actual* approximation quality of the Theorem 4.12
algorithm against exact optima on small dirty tables.

Run with::

    python examples/approximation_tradeoffs.py
"""

from repro import FDSet, approx_u_repair, exact_u_repair, kl_ratio, mci, mfs, our_ratio
from repro.datagen.synthetic import planted_violations_table


def delta_k(k: int) -> FDSet:
    lhs = " ".join(f"A{i}" for i in range(k + 1))
    parts = [f"{lhs} -> B0", "B0 -> C"]
    parts += [f"B{i} -> A0" for i in range(1, k + 1)]
    return FDSet("; ".join(parts))


def delta_prime_k(k: int) -> FDSet:
    return FDSet("; ".join(f"A{i} A{i+1} -> B{i}" for i in range(k + 1)))


def guarantee_table() -> None:
    print("guarantees on Δ_k (ours Θ(k), KL Θ(k²)):")
    print(f"{'k':>3} {'MFS':>4} {'MCI':>4} {'ours':>6} {'KL':>6}")
    for k in range(1, 9):
        fds = delta_k(k)
        print(
            f"{k:>3} {mfs(fds):>4} {mci(fds):>4} "
            f"{our_ratio(fds):>6g} {kl_ratio(fds):>6}"
        )
    print("\nguarantees on Δ'_k (ours Θ(k), KL constant 9):")
    print(f"{'k':>3} {'MFS':>4} {'MCI':>4} {'ours':>6} {'KL':>6}")
    for k in range(1, 9):
        fds = delta_prime_k(k)
        print(
            f"{k:>3} {mfs(fds):>4} {mci(fds):>4} "
            f"{our_ratio(fds):>6g} {kl_ratio(fds):>6}"
        )
    print(
        "\ncombined approximation = min(ours, KL): linear on Δ_k, "
        "constant on Δ'_k — dominating both components."
    )


def measured_ratios() -> None:
    fds = FDSet("A -> B; B -> C")
    print(
        f"\nmeasured quality of the Thm 4.12 algorithm on {fds} "
        f"(guarantee ≤ {our_ratio(fds):g}):"
    )
    print(f"{'seed':>5} {'optimal':>8} {'approx':>8} {'ratio':>6}")
    for seed in range(5):
        table = planted_violations_table(
            ("A", "B", "C"), fds, 8, corruption=0.25, domain=2, seed=seed
        )
        approx = approx_u_repair(table, fds)
        optimum = table.dist_upd(exact_u_repair(table, fds))
        ratio = approx.distance / optimum if optimum else 1.0
        print(
            f"{seed:>5} {optimum:>8g} {approx.distance:>8g} {ratio:>6.2f}"
        )


def main() -> None:
    guarantee_table()
    measured_ratios()


if __name__ == "__main__":
    main()
