"""Scenario: most probable database over noisy sensor registrations.

The paper's Section 3.4 connects repairs to probabilistic cleaning:
given tuple-level confidences, the Most Probable Database conditioned on
the FDs is the principled clean instance.  Here, appliance sensors
register their (sensor → room) placement with confidences produced by an
image pipeline; each sensor must sit in one room and each room has one
hub (``sensor → room`` and ``room → hub``... the latter would be hard, so
facilities uses ``sensor → room; sensor → hub``, a tractable common-lhs
set — exactly the kind of modelling decision the dichotomy informs).

Run with::

    python examples/sensor_mpd.py
"""

from repro import (
    FDSet,
    Table,
    brute_force_mpd,
    classify,
    most_probable_database,
)

FDS = FDSet("sensor -> room; sensor -> hub")
SCHEMA = ("sensor", "room", "hub")


def build_readings() -> Table:
    rows = {
        "r1": ("s1", "kitchen", "h1"),
        "r2": ("s1", "hallway", "h1"),   # conflicting placement of s1
        "r3": ("s2", "kitchen", "h1"),
        "r4": ("s2", "kitchen", "h2"),   # conflicting hub for s2
        "r5": ("s3", "garage", "h2"),
        "r6": ("s3", "garage", "h2"),    # duplicate detection, low trust
        "r7": ("s4", "attic", "h3"),
    }
    confidences = {
        "r1": 0.92,
        "r2": 0.55,
        "r3": 0.97,
        "r4": 0.60,
        "r5": 1.0,    # manually verified → certain
        "r6": 0.35,   # ≤ 0.5: never worth keeping
        "r7": 0.88,
    }
    return Table(SCHEMA, rows, confidences, name="Readings")


def main() -> None:
    table = build_readings()
    print("sensor registrations with confidences:")
    print(table.to_string())

    verdict = classify(FDS)
    print(
        f"\nΔ is {verdict.complexity}: the MPD reduction (Theorem 3.10) "
        "routes through OptSRepair and stays polynomial."
    )

    result = most_probable_database(table, FDS)
    print(f"\nmost probable consistent database (Pr = {result.probability:.4f}, "
          f"via {result.method}):")
    print(result.database.to_string())

    reference = brute_force_mpd(table, FDS)
    print(
        f"\nbrute-force check: Pr = {reference.probability:.4f} "
        f"({'match' if abs(reference.probability - result.probability) < 1e-12 else 'MISMATCH'})"
    )

    kept = set(result.database.ids())
    print("\ndecisions:")
    for tid in table.ids():
        status = "keep" if tid in kept else "drop"
        print(f"  {tid} ({table.weight(tid):.2f}): {status}")


if __name__ == "__main__":
    main()
