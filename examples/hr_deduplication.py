"""Scenario: cleaning an HR master table after a company merger.

The paper's introduction motivates repairs with data integrated from
conflicting sources.  Here two HR exports disagree about employees; the
FD set is Example 3.1's Δ1 over the ssn schema — an FD set whose
tractability is *not* obvious (it needs the lhs-marriage simplification),
yet ``OSRSucceeds`` certifies it and ``OptSRepair`` cleans the table
optimally.

Tuple weights encode source trust: the payroll system (weight 3) beats
the legacy directory (weight 1).

The example also shows the paper's second motivation: the optimal repair
distance as an *estimate of dirtiness* for human-in-the-loop cleaning.

Run with::

    python examples/hr_deduplication.py
"""

from repro import FDSet, Table, classify, optimal_s_repair, u_repair, violating_pairs

DELTA_HR = FDSet(
    "ssn -> first; ssn -> last; first last -> ssn; ssn -> address; "
    "ssn office -> phone; ssn office -> fax"
)

SCHEMA = ("ssn", "first", "last", "address", "office", "phone", "fax")


def build_table() -> Table:
    payroll = [
        ("101", "Ada", "Lovelace", "12 Analytical Rd", "B1", "555-0101", "555-0201"),
        ("102", "Edgar", "Codd", "7 Relational Way", "B1", "555-0102", "555-0202"),
        ("103", "Grace", "Hopper", "1 Compiler Ct", "B2", "555-0103", "555-0203"),
    ]
    legacy = [
        # Same ssn, different address: violates ssn → address.
        ("101", "Ada", "Lovelace", "99 Old Town Ln", "B1", "555-0101", "555-0201"),
        # Same name pair, different ssn: violates first last → ssn.
        ("201", "Edgar", "Codd", "7 Relational Way", "B3", "555-0302", "555-0402"),
        # Same ssn+office, different phone: violates ssn office → phone.
        ("103", "Grace", "Hopper", "1 Compiler Ct", "B2", "555-9999", "555-0203"),
    ]
    rows = {}
    weights = {}
    for i, row in enumerate(payroll, start=1):
        rows[f"pay-{i}"] = row
        weights[f"pay-{i}"] = 3.0
    for i, row in enumerate(legacy, start=1):
        rows[f"old-{i}"] = row
        weights[f"old-{i}"] = 1.0
    return Table(SCHEMA, rows, weights, name="HR")


def main() -> None:
    table = build_table()
    print("merged HR table (payroll weight 3, legacy weight 1):")
    print(table.to_string())

    verdict = classify(DELTA_HR)
    print(f"\nΔ_HR is {verdict.complexity} for optimal S-repairs; "
          f"simplification chain: "
          + " ⇛ ".join(step.kind for step in verdict.steps))

    conflicts = sorted(
        {frozenset((i, j)) for i, j, _fd in violating_pairs(table, DELTA_HR)},
        key=sorted,
    )
    print(f"\n{len(conflicts)} conflicting record pairs detected:")
    for pair in conflicts:
        print(f"  {' vs '.join(sorted(pair))}")

    s_result = optimal_s_repair(table, DELTA_HR)
    print(
        f"\nestimated dirtiness (optimal deletion cost): {s_result.distance:g} "
        f"of total weight {table.total_weight():g}"
    )
    print("records kept by the optimal S-repair:")
    print(s_result.repair.to_string())

    u_result = u_repair(table, DELTA_HR)
    print(
        f"\ncell-update alternative: {u_result.distance:g} weighted cell "
        f"changes ({'optimal' if u_result.optimal else 'approximate'})"
    )
    for tid, attr in sorted(u_result.update.changed_cells(table), key=str):
        print(
            f"  {tid}.{attr}: {table.value(tid, attr)!r} → "
            f"{u_result.update.value(tid, attr)!r}"
        )


if __name__ == "__main__":
    main()
