"""Scenario: assessing and cleaning a merged product catalogue.

Demonstrates the high-level pipeline API on the paper's §1 motivations:
first *assess* the dirtiness of an integrated catalogue (the optimal
repair cost bracket is the paper's "educated estimate for the extent to
which the database is dirty"), then *clean* it under two policies and
compare.

The FD set is Example 4.2's ``Δ0 = {product → price, buyer → email}``:
APX-complete for S-repairs (it fails ``OSRSucceeds``) yet polynomial for
U-repairs (Theorem 4.1 decomposition) — the pipeline reflects exactly
that asymmetry in the guarantees it reports.

Run with::

    python examples/catalog_pipeline.py
"""

from repro import FDSet, assess, clean, classify
from repro.datagen.synthetic import planted_violations_table

FDS = FDSet("product -> price; buyer -> email")
SCHEMA = ("product", "price", "buyer", "email")


def main() -> None:
    table = planted_violations_table(
        SCHEMA, FDS, size=60, corruption=0.12, domain=6, weighted=True, seed=42
    )

    print("=== assessment (polynomial, any Δ) ===")
    report = assess(table, FDS)
    print(report.summary())

    verdict = classify(FDS)
    print(
        f"\nS-repair dichotomy verdict: {verdict.complexity}"
        f" (witness: {verdict.witness})"
    )

    print("\n=== policy 1: delete, best guarantee ===")
    deletions = clean(table, FDS, strategy="deletions", guarantee="best")
    print(
        f"method {deletions.method}: deleted weight {deletions.distance:g} "
        f"({'optimal' if deletions.optimal else f'≤ {deletions.ratio_bound:g}× optimal'})"
    )

    print("\n=== policy 2: update, best guarantee ===")
    updates = clean(table, FDS, strategy="updates", guarantee="best")
    print(
        f"method {updates.method}: update distance {updates.distance:g} "
        f"({'optimal' if updates.optimal else f'≤ {updates.ratio_bound:g}× optimal'})"
    )

    print(
        "\nNote the asymmetry (Corollary 4.11): updates are provably "
        "optimal here (Theorem 4.1 decomposition into single FDs), while "
        "optimal deletions are APX-complete for this Δ — on large tables "
        "the pipeline would switch to the 2-approximation for deletions "
        "but stay exact for updates."
    )


if __name__ == "__main__":
    main()
