"""Quickstart: repair the paper's running example (Figure 1).

Run with::

    python examples/quickstart.py

Walks through the core API on the Office table: dichotomy classification,
optimal S-repair (tuple deletions), optimal U-repair (cell updates), and
the polynomial 2-approximation.
"""

from repro import (
    FDSet,
    Table,
    approx_s_repair,
    classify,
    optimal_s_repair,
    u_repair,
)


def main() -> None:
    # The Office table of Figure 1(a): facility → city and
    # facility room → floor must hold; tuple weights encode trust.
    fds = FDSet("facility -> city; facility room -> floor")
    table = Table(
        ("facility", "room", "floor", "city"),
        {
            1: ("HQ", "322", 3, "Paris"),
            2: ("HQ", "322", 30, "Madrid"),
            3: ("HQ", "122", 1, "Madrid"),
            4: ("Lab1", "B35", 3, "London"),
        },
        {1: 2, 2: 1, 3: 1, 4: 2},
        name="Office",
    )

    print("dirty table:")
    print(table.to_string())

    # 1. Where does Δ sit in the dichotomy (Theorem 3.4)?
    verdict = classify(fds)
    print(f"\noptimal S-repair complexity: {verdict.complexity}")
    for line in verdict.trace_lines():
        print(f"  {line}")

    # 2. Optimal S-repair: fewest (weighted) tuple deletions.
    s_result = optimal_s_repair(table, fds)
    print(f"\noptimal S-repair (deleted weight {s_result.distance:g}, "
          f"method {s_result.method}):")
    print(s_result.repair.to_string())

    # 3. Optimal U-repair: fewest (weighted) cell updates.  The common
    #    lhs 'facility' makes this polynomial too (Corollary 4.6).
    u_result = u_repair(table, fds)
    print(f"\noptimal U-repair (distance {u_result.distance:g}, "
          f"{u_result.method}):")
    print(u_result.update.to_string())

    # 4. The always-available polynomial 2-approximation (Prop 3.3).
    a_result = approx_s_repair(table, fds)
    print(f"\n2-approximate S-repair (deleted weight {a_result.distance:g}, "
          f"guarantee ≤ {a_result.ratio_bound:g}× optimal)")


if __name__ == "__main__":
    main()
