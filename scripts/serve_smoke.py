#!/usr/bin/env python
"""CI smoke for the repair daemon: start ``fdrepair serve``, drive two
tenants over TCP, assert clean shutdown.

Every step runs under a hard timeout, so a hung worker pool (the
failure mode PR 6's lifecycle fixes target) fails CI promptly instead
of stalling the job until the runner-level kill.  Exit code 0 means:
the daemon came up, both tenants' sessions opened, appended, repaired
(with the expected distances), `status` answered, `stats` saw both
tenants sharing one pool, `shutdown` was acknowledged, and the process
exited by itself within the grace period.

With ``--chaos`` the smoke turns adversarial: a ``FDREPAIR_FAULTS``
plan kills a pool worker mid-solve (the supervisor must heal it and the
repair distances must still come out right), the daemon is then
hard-killed (SIGKILL, no shutdown op) and restarted on the same
``--state-dir``, which must recover both tenant sessions from the op
journal; SIGTERM must drain gracefully and exit 0.  A final sharded
phase boots ``fdrepair serve --shards 2`` under a ``shard.kill`` plan:
the shard fleet must heal the kill (death + respawn visible in
``stats``) and every acknowledged reply must be byte-identical to an
unsharded reference daemon's.

Usage: python scripts/serve_smoke.py [--timeout SECONDS] [--chaos]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time

STEP_TIMEOUT = 30.0

FAULTS_ENV = "FDREPAIR_FAULTS"

#: Kill worker 0's first incarnation at its first solve; the respawn
#: (generation 1) survives, so healing is observable and deterministic.
CHAOS_PLAN = [{"site": "worker.solve", "action": "kill",
               "match": {"worker": 0, "generation": 0}}]

#: Kill shard 0's first incarnation at its second message (the mirror
#: delta right after ``open``); the replacement generation survives and
#: is re-derived by journal replay, so the repair must still be
#: byte-identical to an unsharded daemon's.
SHARD_CHAOS_PLAN = [{"site": "shard.kill", "action": "kill", "at": 2,
                     "match": {"shard": 0, "generation": 0}}]


def fail(message: str, proc: subprocess.Popen = None) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    if proc is not None:
        proc.kill()
        try:
            _out, err = proc.communicate(timeout=5)
            if err:
                sys.stderr.write(err.decode("utf-8", "replace")[-2000:])
        except subprocess.TimeoutExpired:
            pass
    sys.exit(1)


def _smoke_env() -> dict:
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(repo, "src"), env.get("PYTHONPATH")) if p
    )
    return env


def _spawn(extra_argv, env, deadline):
    """Start ``fdrepair serve`` and wait for its listening banner."""
    argv = [sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--parallel", "1"] + extra_argv
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
    )
    start = time.monotonic()
    banner = proc.stdout.readline().decode("utf-8", "replace").strip()
    if time.monotonic() - start > deadline or not banner.startswith(
        "listening on"
    ):
        fail(f"no listening banner (got {banner!r})", proc)
    port = int(banner.rsplit(":", 1)[1])
    print(f"daemon up on port {port}")
    return proc, port


def _connect(port, deadline, proc):
    sock = socket.create_connection(("127.0.0.1", port), timeout=deadline)
    sock.settimeout(deadline)
    rfile = sock.makefile("rb")

    def rpc(obj: dict) -> dict:
        sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))
        line = rfile.readline()
        if not line:
            fail(f"connection closed answering {obj}", proc)
        reply = json.loads(line)
        print(f"  {obj.get('op')}: {json.dumps(reply)[:120]}")
        return reply

    return sock, rpc


def run_chaos(args) -> None:
    """The fault-tolerance smoke: heal a killed worker, recover from a
    hard kill via the journal, drain gracefully on SIGTERM."""
    deadline = args.timeout
    state_dir = args.state_dir
    if state_dir is None:
        import tempfile

        state_dir = tempfile.mkdtemp(prefix="fdrepair-chaos-")
    env = _smoke_env()
    env[FAULTS_ENV] = json.dumps(CHAOS_PLAN)

    # Phase 1: serve with a worker-killing fault plan.  The supervisor
    # must absorb the death: correct distances, supervision counters.
    proc, port = _spawn(["--state-dir", state_dir], env, deadline)
    sock, rpc = _connect(port, deadline, proc)
    for tenant in ("acme", "globex"):
        reply = rpc({"op": "open", "tenant": tenant, "session": "main",
                     "schema": ["A", "B"], "fds": "A -> B"})
        if not reply.get("ok"):
            fail(f"open failed for {tenant}: {reply}", proc)
        reply = rpc({"op": "append", "tenant": tenant, "session": "main",
                     "rows": [["a", "x"], ["a", "y"], ["b", "z"]]})
        if not reply.get("ok") or reply.get("distance") != 1.0:
            fail(f"append repair wrong under chaos for {tenant}: {reply}",
                 proc)
    sup = {}
    poll_until = time.monotonic() + deadline
    while time.monotonic() < poll_until:
        sup = rpc({"op": "stats"}).get("pool_supervision", {})
        if sup.get("respawns", 0) >= 1:
            break
        time.sleep(0.2)
    if sup.get("worker_deaths", 0) < 1 or sup.get("respawns", 0) < 1:
        fail(f"supervisor saw no worker death/respawn: {sup}", proc)
    print(f"supervisor healed a worker kill: {sup}")

    # Phase 2: hard-kill the daemon (no shutdown op, no snapshot) and
    # restart on the same state dir; the journal must bring both
    # tenants back.
    sock.close()
    proc.kill()
    proc.wait(timeout=deadline)
    print("daemon hard-killed; restarting on the same --state-dir")
    proc, port = _spawn(["--state-dir", state_dir], env, deadline)
    sock, rpc = _connect(port, deadline, proc)
    stats = rpc({"op": "stats"})
    if stats.get("recovered_sessions") != 2:
        fail(f"expected 2 recovered sessions: {stats}", proc)
    for tenant in ("acme", "globex"):
        reply = rpc({"op": "status", "tenant": tenant, "session": "main"})
        if not reply.get("ok") or reply.get("conflicts") != 1:
            fail(f"recovered status wrong for {tenant}: {reply}", proc)
        reply = rpc({"op": "repair", "tenant": tenant, "session": "main"})
        if not reply.get("ok") or reply.get("distance") != 1.0:
            fail(f"recovered repair wrong for {tenant}: {reply}", proc)
    print("recovery OK: both tenants byte-for-byte back in business")

    # Phase 3: SIGTERM drains gracefully — exit code 0, not a signal
    # death — and leaves a compacted snapshot plus journal behind for
    # the CI artifact.
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=deadline)
    except subprocess.TimeoutExpired:
        fail(f"daemon still running {deadline}s after SIGTERM", proc)
    if code != 0:
        _out, err = proc.communicate()
        fail(f"SIGTERM exit {code}: {err.decode('utf-8', 'replace')[-500:]}")
    snapshot = os.path.join(state_dir, "snapshot.pkl")
    journal = os.path.join(state_dir, "journal.jsonl")
    if not os.path.exists(snapshot):
        fail(f"graceful drain left no snapshot at {snapshot}")
    if not os.path.exists(journal):
        fail(f"no journal at {journal}")
    print(f"chaos phases 1-3 OK: healed kill, journal recovery, clean "
          f"SIGTERM drain (state in {state_dir})")

    # Phase 4: sharded execution under a shard-kill plan.  A daemon on
    # --shards 2 loses shard 0 to the fault plan mid-stream; the fleet
    # must heal it (death + respawn in stats) and every acknowledged
    # reply must match an unsharded reference daemon byte for byte.
    script = [
        {"op": "open", "tenant": "acme", "session": "shard",
         "schema": ["A", "B", "C"], "fds": "A -> B; B -> C"},
        {"op": "append", "tenant": "acme", "session": "shard",
         "rows": [["a", "x", "1"], ["a", "y", "1"], ["b", "z", "2"],
                  ["c", "w", "3"], ["c", "w", "3"], ["c", "v", "4"]]},
        {"op": "repair", "tenant": "acme", "session": "shard"},
        {"op": "status", "tenant": "acme", "session": "shard"},
    ]

    def _drive_script(extra_argv, drive_env):
        proc, port = _spawn(extra_argv, drive_env, deadline)
        sock, rpc = _connect(port, deadline, proc)
        replies = [rpc(dict(msg)) for msg in script]
        healed = {}
        poll_until = time.monotonic() + deadline
        while extra_argv and time.monotonic() < poll_until:
            stats = rpc({"op": "stats"})
            healed = stats.get("pool_supervision", {})
            if stats.get("pool_kind") != "shards":
                fail(f"expected a sharded pool: {stats}", proc)
            if healed.get("respawns", 0) >= 1:
                break
            time.sleep(0.2)
        if not rpc({"op": "shutdown"}).get("ok"):
            fail("sharded shutdown not acknowledged", proc)
        sock.close()
        try:
            code = proc.wait(timeout=deadline)
        except subprocess.TimeoutExpired:
            fail(f"daemon still running {deadline}s after shutdown", proc)
        if code != 0:
            _out, err = proc.communicate()
            fail(f"sharded daemon exited {code}: "
                 f"{err.decode('utf-8', 'replace')[-500:]}")
        return replies, healed

    reference, _ = _drive_script([], _smoke_env())
    shard_env = _smoke_env()
    shard_env[FAULTS_ENV] = json.dumps(SHARD_CHAOS_PLAN)
    sharded, healed = _drive_script(["--shards", "2"], shard_env)
    if sharded != reference:
        fail(f"sharded replies diverge from reference:\n"
             f"  sharded:   {sharded}\n  reference: {reference}")
    if healed.get("shard_deaths", 0) < 1 or healed.get("respawns", 0) < 1:
        fail(f"shard fleet saw no death/respawn: {healed}")
    print(f"shard chaos OK: fleet healed a kill ({healed}) and stayed "
          f"byte-identical to the unsharded reference")
    print(f"CHAOS SMOKE OK: healed kills (worker + shard), journal "
          f"recovery, byte-identical sharded replies, clean SIGTERM "
          f"drain (state in {state_dir})")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--timeout", type=float, default=STEP_TIMEOUT,
                        help="hard per-step timeout in seconds")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="pass --trace PATH through to fdrepair serve "
                             "and assert the daemon wrote a telemetry log")
    parser.add_argument("--chaos", action="store_true",
                        help="run the fault-tolerance smoke: worker kill "
                             "+ hard restart + SIGTERM drain")
    parser.add_argument("--state-dir", metavar="PATH", default=None,
                        help="state dir for --chaos (kept afterwards so "
                             "CI can upload the journal as an artifact)")
    args = parser.parse_args()
    if args.chaos:
        run_chaos(args)
        return
    deadline = args.timeout

    env = _smoke_env()
    extra = ["--trace", args.trace] if args.trace else []
    proc, port = _spawn(extra, env, deadline)
    sock, rpc = _connect(port, deadline, proc)

    # Step 2: two tenants, one shared pool; conflicting appends repair
    # with the expected distances.
    if not rpc({"op": "ping"}).get("pong"):
        fail("ping did not pong", proc)
    for tenant in ("acme", "globex"):
        reply = rpc({"op": "open", "tenant": tenant, "session": "main",
                     "schema": ["A", "B"], "fds": "A -> B"})
        if not reply.get("ok"):
            fail(f"open failed for {tenant}: {reply}", proc)
        reply = rpc({"op": "append", "tenant": tenant, "session": "main",
                     "rows": [["a", "x"], ["a", "y"], ["b", "z"]]})
        if not reply.get("ok") or reply.get("distance") != 1.0:
            fail(f"append repair wrong for {tenant}: {reply}", proc)
        reply = rpc({"op": "status", "tenant": tenant, "session": "main"})
        if not reply.get("ok") or reply.get("conflicts") != 1:
            fail(f"status wrong for {tenant}: {reply}", proc)

    stats = rpc({"op": "stats"})
    if stats.get("sessions") != 2:
        fail(f"expected 2 sessions in stats: {stats}", proc)
    tenant_sessions = stats.get("tenant_sessions", {})
    for tenant in ("acme", "globex"):
        if tenant_sessions.get(tenant, {}).get("resident") != 1:
            fail(f"per-tenant stats missing {tenant}: {stats}", proc)
    if stats.get("op_latency_s", {}).get("op.append", {}).get("count") != 2:
        fail(f"expected 2 appends in op latency histogram: {stats}", proc)
    # The second tenant's identical component should ride the first's
    # solve through the shared cache.
    if stats.get("cache_hits", 0) < 1:
        fail(f"expected cross-tenant cache hits: {stats}", proc)

    # Step 3: shutdown is acknowledged and the process exits by itself.
    if not rpc({"op": "shutdown"}).get("ok"):
        fail("shutdown not acknowledged", proc)
    sock.close()
    try:
        code = proc.wait(timeout=deadline)
    except subprocess.TimeoutExpired:
        fail(f"daemon still running {deadline}s after shutdown", proc)
    if code != 0:
        _out, err = proc.communicate()
        fail(f"daemon exited {code}: {err.decode('utf-8', 'replace')[-500:]}")
    if args.trace:
        if not os.path.exists(args.trace) or not os.path.getsize(args.trace):
            fail(f"daemon wrote no telemetry trace at {args.trace}")
        with open(args.trace, "r", encoding="utf-8") as handle:
            types = {json.loads(line).get("type")
                     for line in handle if line.strip()}
        if "op" not in types or "summary" not in types:
            fail(f"trace missing op/summary records (saw {sorted(types)})")
        print(f"trace OK: {sorted(types)} records in {args.trace}")
    print("SMOKE OK: two tenants served, clean shutdown")


if __name__ == "__main__":
    main()
