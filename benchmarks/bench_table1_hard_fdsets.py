"""E3 — Table 1: the four APX-complete FD sets over R(A, B, C).

Paper claims reproduced: all four fail ``OSRSucceeds``; computing an
optimal S-repair remains possible exactly (exponential baseline) and the
polynomial 2-approximation stays within ratio 2 — typically far below.
"""

import pytest

from repro.core.approx import approx_s_repair
from repro.core.dichotomy import HARD_FD_SETS, osr_succeeds
from repro.core.exact import exact_s_repair
from repro.core.violations import satisfies
from repro.datagen.synthetic import planted_violations_table

from conftest import print_table


@pytest.mark.parametrize("name", sorted(HARD_FD_SETS))
def test_table1_exact_vs_approx(benchmark, name):
    fds = HARD_FD_SETS[name]
    assert not osr_succeeds(fds)
    tables = [
        planted_violations_table(
            ("A", "B", "C"), fds, 24, corruption=0.15, domain=3, seed=seed
        )
        for seed in range(5)
    ]

    def run_approx():
        return [approx_s_repair(t, fds) for t in tables]

    approx_results = benchmark(run_approx)

    rows = []
    worst = 1.0
    for t, res in zip(tables, approx_results):
        assert satisfies(res.repair, fds)
        opt = t.dist_sub(exact_s_repair(t, fds))
        ratio = res.distance / opt if opt else 1.0
        worst = max(worst, ratio)
        rows.append((len(t), f"{opt:g}", f"{res.distance:g}", f"{ratio:.3f}"))
        assert res.distance <= 2 * opt + 1e-9
    print_table(
        f"E3 / Table 1 — {name}: exact vs 2-approx (bound 2.0)",
        ("|T|", "optimal", "2-approx", "ratio"),
        rows,
    )
    assert worst <= 2.0
