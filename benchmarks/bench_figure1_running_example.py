"""E1 — Figure 1 + Example 2.3: the running Office example.

Paper claims reproduced:
* ``dist_sub``: S1 = S2 = 2 (optimal), S3 = 3 (1.5-optimal);
* ``dist_upd``: U1 = 2 (optimal), U2 = 3, U3 = 4;
* our algorithms find cost-2 repairs of both kinds in polynomial time.
"""

import pytest

from repro.core.srepair import opt_s_repair
from repro.core.urepair import u_repair
from repro.core.violations import satisfies
from repro.datagen.office import (
    EXPECTED_SUBSET_DISTANCES,
    EXPECTED_UPDATE_DISTANCES,
    consistent_subsets,
    consistent_updates,
    office_fds,
    office_table,
)

from conftest import print_table


def test_figure1_s_repair(benchmark):
    table = office_table()
    fds = office_fds()
    repair = benchmark(opt_s_repair, fds, table)
    assert satisfies(repair, fds)
    assert table.dist_sub(repair) == 2.0

    rows = []
    for name, subset in consistent_subsets().items():
        dist = table.dist_sub(subset)
        rows.append(
            (name, dist, EXPECTED_SUBSET_DISTANCES[name], f"{dist / 2.0:g}-optimal")
        )
        assert dist == EXPECTED_SUBSET_DISTANCES[name]
    rows.append(("OptSRepair", table.dist_sub(repair), 2.0, "optimal"))
    print_table(
        "E1 / Figure 1 — consistent subsets",
        ("subset", "dist_sub (measured)", "paper", "quality"),
        rows,
    )


def test_figure1_u_repair(benchmark):
    table = office_table()
    fds = office_fds()
    result = benchmark(u_repair, table, fds)
    assert result.optimal
    assert result.distance == 2.0

    rows = []
    for name, update in consistent_updates().items():
        dist = table.dist_upd(update)
        rows.append((name, dist, EXPECTED_UPDATE_DISTANCES[name]))
        assert dist == EXPECTED_UPDATE_DISTANCES[name]
    rows.append(("dispatcher U*", result.distance, 2.0))
    print_table(
        "E1 / Figure 1 — consistent updates",
        ("update", "dist_upd (measured)", "paper"),
        rows,
    )
