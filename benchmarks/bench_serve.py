"""PR-6 — multi-tenant daemon throughput vs serial one-session streams.

The daemon's performance claim rests on the paper's component locality
working *across* sessions: per-component repairs are content-addressed,
so when N tenants' streams carry overlapping data (the fleet-of-similar-
tables workload: N services cleaning near-identical dimension tables),
one tenant's solve is every co-tenant's cache hit.  The
:class:`repro.server.SessionManager` therefore runs all sessions over
one shared :class:`repro.session.SolutionCache` — the same engine
``fdrepair serve`` fronts.

Acceptance gate (ISSUE 6): running 8 tenants' workloads through one
shared-cache manager must be **≥ 2×** faster than replaying the same
workloads as serial isolated one-session streams (each with a private
cache — exactly what ``fdrepair stream`` per tenant would do), with
per-tenant results byte-identical between the arms.  Results land in
``BENCH_stream.json`` under the existing >30% regression gate.
"""

import time

from repro.core.fd import FDSet
from repro.io.tables import table_to_csv
from repro.core.table import Table
from repro.server import ServerConfig, SessionManager
from repro.session import RepairSession

from conftest import print_table, record_bench

SCHEMA = ("A", "B", "C")

#: Hard Δ: components above the conflict clusters solve via exact
#: branch & bound — real per-component work for the cache to save.
HARD = FDSet("A -> B; B -> C")

TENANTS = 8
CLUSTERS = 6
CLUSTER_SIZE = 40
BATCHES = 4  # appends per tenant; conflict content arrives spread out


def _tenant_batches():
    """One tenant's append script: CLUSTERS conflict clusters (distinct
    value spaces → independent components) delivered over BATCHES
    appends.  Identical for every tenant — the fleet-of-similar-tables
    workload where cross-session sharing pays.  Small A/B/C domains per
    cluster make the conflict graph irregular enough that the exact
    branch & bound does real work (~5 ms per component), so the arms'
    delta measures solving, not bookkeeping."""
    import random

    rows = []
    for c in range(CLUSTERS):
        rng = random.Random(100 + c)
        for _ in range(CLUSTER_SIZE):
            rows.append((
                f"a{c}.{rng.randrange(4)}",
                f"b{c}.{rng.randrange(8)}",
                f"x{c}.{rng.randrange(3)}",
            ))
    per = (len(rows) + BATCHES - 1) // BATCHES
    return [rows[i : i + per] for i in range(0, len(rows), per)]


def _run_serial(batches):
    """The baseline arm: each tenant as its own isolated stream session
    with a private component cache (``fdrepair stream`` × TENANTS)."""
    outputs = []
    for _tenant in range(TENANTS):
        session = RepairSession(Table(SCHEMA, {}), HARD)
        for batch in batches:
            session.append(batch, repair=False)
        result = session.repair()
        outputs.append(table_to_csv(result.cleaned))
    return outputs


def _run_daemon(batches):
    """The daemon arm: the same 8 workloads through one SessionManager —
    one shared solution cache, per-tenant sessions (workers=0 keeps both
    arms solving in-process, so the delta is the sharing, not IPC)."""
    manager = SessionManager(ServerConfig(workers=0))
    try:
        outputs = []
        for t in range(TENANTS):
            tenant = f"tenant-{t}"
            manager.open(
                tenant, "s", {"schema": list(SCHEMA), "fds": "A -> B; B -> C"}
            )
            entry = manager.entry(tenant, "s")
            for batch in batches:
                manager.run_op(
                    entry,
                    "append",
                    {"rows": [list(r) for r in batch], "repair": False},
                )
            manager.run_op(entry, "repair", {})
            outputs.append(table_to_csv(entry.live.last_result.cleaned))
        return outputs, manager.stats()
    finally:
        manager.shutdown()


def test_serve_multi_tenant_throughput_2x(benchmark):
    """The ISSUE-6 gate: 8 tenants over one shared-cache manager ≥ 2×
    faster than 8 serial isolated streams, byte-identical per tenant."""
    batches = _tenant_batches()

    # Warm-up (untimed): pay imports and allocator growth outside the
    # timed arms, then time each arm once — the arms are whole-workload
    # loops (TENANTS × CLUSTERS solves each), so a single pass is
    # already an aggregate over 64 component solves per arm.
    _run_serial(batches[:1])
    _run_daemon(batches[:1])
    import gc

    gc.collect()

    start = time.perf_counter()
    serial_out = _run_serial(batches)
    serial_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    daemon_out, stats = _run_daemon(batches)
    daemon_s = time.perf_counter() - start

    # Byte-identity across arms, per tenant: the shared cache may only
    # ever change *when* a component is solved, never the repair.
    assert daemon_out == serial_out
    # The mechanism: tenants 2..8 ride tenant 1's solves.
    assert stats["cache_hits"] >= (TENANTS - 1) * CLUSTERS

    benchmark.pedantic(
        _run_daemon, args=(batches[:1],), rounds=1, iterations=1
    )

    speedup = serial_s / daemon_s
    print_table(
        "PR-6 — multi-tenant daemon vs serial isolated streams "
        f"({TENANTS} tenants, {CLUSTERS}×{CLUSTER_SIZE} clusters, hard Δ)",
        ("arm", "total", "per tenant"),
        [
            ("serial isolated streams", f"{serial_s * 1e3:.0f} ms",
             f"{serial_s / TENANTS * 1e3:.1f} ms"),
            ("shared-cache daemon", f"{daemon_s * 1e3:.0f} ms",
             f"{daemon_s / TENANTS * 1e3:.1f} ms"),
            ("speedup", f"{speedup:.1f}×", ""),
        ],
    )
    record_bench(
        "BENCH_stream.json",
        "serve-multi-tenant-8x",
        daemon_s / TENANTS,
        serial_per_tenant_s=round(serial_s / TENANTS, 6),
        speedup=round(speedup, 2),
        tenants=TENANTS,
        cache_hits=stats["cache_hits"],
        cache_misses=stats["cache_misses"],
    )
    # The acceptance gate.
    assert speedup >= 2.0


def test_serve_session_eviction_roundtrip_cost(benchmark):
    """Eviction + rehydration must stay cheap relative to a repair:
    freezing a session is a pickle, rehydration an index rebuild — the
    manager can cycle cold tenants aggressively without making their
    next request pathological."""
    batches = _tenant_batches()
    manager = SessionManager(ServerConfig(workers=0))
    try:
        manager.open(
            "t", "s", {"schema": list(SCHEMA), "fds": "A -> B; B -> C"}
        )
        entry = manager.entry("t", "s")
        for batch in batches:
            manager.run_op(entry, "append", {"rows": batch, "repair": False})
        manager.run_op(entry, "repair", {})

        start = time.perf_counter()
        manager._freeze(entry)
        freeze_s = time.perf_counter() - start

        start = time.perf_counter()
        manager.run_op(entry, "status", {})  # rehydrates
        rehydrate_s = time.perf_counter() - start

        start = time.perf_counter()
        manager.run_op(entry, "repair", {})
        warm_repair_s = time.perf_counter() - start

        benchmark.pedantic(
            manager.run_op, args=(entry, "status", {}), rounds=1, iterations=1
        )
        print_table(
            "PR-6 — eviction lifecycle costs (one tenant, hard Δ)",
            ("step", "time"),
            [
                ("freeze (export + pickle)", f"{freeze_s * 1e3:.1f} ms"),
                ("rehydrate (restore + index)", f"{rehydrate_s * 1e3:.1f} ms"),
                ("post-rehydrate repair", f"{warm_repair_s * 1e3:.1f} ms"),
            ],
        )
        record_bench(
            "BENCH_stream.json",
            "serve-eviction-roundtrip",
            freeze_s + rehydrate_s,
            freeze_s=round(freeze_s, 6),
            rehydrate_s=round(rehydrate_s, 6),
        )
        # Sanity floor, not a gate: the round trip must not dwarf the
        # workload it displaces.
        assert freeze_s + rehydrate_s < 5.0
    finally:
        manager.shutdown()
