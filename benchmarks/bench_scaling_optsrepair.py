"""E6 — Theorem 3.2: ``OptSRepair`` terminates in polynomial time.

Paper claims reproduced: the algorithm's runtime grows polynomially with
|T| on every simplification path (common lhs, consensus, lhs marriage and
the chain composition).  We measure a size sweep and assert near-linear
empirical scaling (doubling |T| must not blow up the per-tuple cost), in
contrast to the exponential-in-the-worst-case exact baseline on hard FD
sets.
"""

import time

import pytest

from repro.core.fd import FDSet
from repro.core.srepair import opt_s_repair
from repro.datagen.synthetic import clustered_conflicts_table, planted_violations_table

from conftest import measure_best, print_table, record_bench

FAMILIES = {
    "chain (common lhs+consensus)": FDSet("A -> B; A B -> C"),
    "marriage": FDSet("A -> B; B -> A; B -> C"),
    "consensus": FDSet("-> A; B -> C"),
}

SIZES = (100, 200, 400, 800)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_scaling_polynomial(benchmark, family):
    fds = FAMILIES[family]
    tables = {
        n: planted_violations_table(
            ("A", "B", "C"), fds, n, corruption=0.1, domain=5, seed=n
        )
        for n in SIZES
    }

    benchmark(opt_s_repair, fds, tables[SIZES[-1]])

    rows = []
    per_tuple = []
    size_times = {}
    for n in SIZES:
        start = time.perf_counter()
        opt_s_repair(fds, tables[n])
        elapsed = time.perf_counter() - start
        per_tuple.append(elapsed / n)
        size_times[str(n)] = round(elapsed, 6)
        rows.append((n, f"{elapsed * 1e3:.2f} ms", f"{elapsed / n * 1e6:.2f} µs"))
    print_table(
        f"E6 / Theorem 3.2 — OptSRepair scaling ({family})",
        ("|T|", "time", "time / tuple"),
        rows,
    )
    record_bench(
        "BENCH_scaling.json",
        f"optsrepair-sweep/{family}",
        size_times[str(SIZES[-1])],  # the |T| = 800 point the sweep tracks
        sizes=size_times,
    )
    # Polynomial (near-linear) shape: per-tuple cost must not explode.
    # Allow generous noise; an exponential algorithm would exceed this by
    # orders of magnitude over an 8× size range.
    assert per_tuple[-1] <= per_tuple[0] * 30


def test_production_scale_smoke(benchmark):
    """20 000 tuples: OptSRepair solves in well under a second, and the
    polynomial assessment brackets (here: certifies) the optimal cost."""
    from repro.pipeline import assess

    fds = FAMILIES["chain (common lhs+consensus)"]
    table = planted_violations_table(
        ("A", "B", "C"), fds, 20_000, corruption=0.05, domain=30, seed=7
    )
    repair = benchmark.pedantic(opt_s_repair, args=(fds, table), rounds=1, iterations=1)
    optimum = table.dist_sub(repair)
    report = assess(table, fds)
    print_table(
        "E6 — production-scale smoke (20k tuples)",
        ("|T|", "optimal cost", "assessment bracket", "tight?"),
        [
            (
                len(table),
                f"{optimum:g}",
                f"[{report.lower_bound:g}, {report.upper_bound:g}]",
                report.bracket_is_tight,
            )
        ],
    )
    assert report.lower_bound <= optimum <= report.upper_bound


CLUSTERED_CONFIGS = {
    # Tractable chain Δ: the win is skipping the 25k consistent filler
    # tuples (they never enter a solver) plus parallel per-cluster
    # OptSRepair.
    "clustered-chain-30k": dict(
        fds=FDSet("A -> B; A B -> C"),
        size=30_000,
        clusters=200,
        cluster_size=25,
        filler_group_size=40,
        # ~2.2× even on one core (where parallelism is pure overhead);
        # gated at 1.5 to absorb CI noise — the ≥2× acceptance gate is
        # the marriage configuration below, which holds by an order of
        # magnitude.
        min_speedup=1.5,
        global_runs=3,
    ),
    # Marriage Δ: MarriageRep's bipartite matching is cubic in the number
    # of distinct lhs values, so the global path pays a huge Hungarian
    # over every filler value while each cluster's matching is tiny —
    # decomposition shrinks the *algorithm*, not just the data.
    "clustered-marriage-10k": dict(
        fds=FDSet("A -> B; B -> A; B -> C"),
        size=10_000,
        clusters=120,
        cluster_size=25,
        filler_group_size=100,
        min_speedup=2.0,
        global_runs=1,  # the global path is painfully slow; one run suffices
    ),
}


@pytest.mark.parametrize("config", sorted(CLUSTERED_CONFIGS))
def test_clustered_components_parallel_speedup(benchmark, config):
    """PR-2 acceptance — the decomposition layer on clustered conflicts.

    End-to-end ``pipeline.clean`` (index build included on both sides):
    the PR-1 global path (``decomposed=False``, one solver over the whole
    table) versus the decomposed portfolio with ``--parallel 4``.  Both
    must return the same repair distance; the decomposed path must be at
    least ``min_speedup`` × faster, and the best-of-5 times are recorded
    in ``BENCH_scaling.json``.
    """
    from repro.pipeline import clean

    spec = CLUSTERED_CONFIGS[config]
    fds = spec["fds"]

    def fresh():
        # A fresh table per run: both paths pay a cold conflict-index
        # build, as a first-contact cleaning call would.
        return clustered_conflicts_table(
            ("A", "B", "C"),
            spec["size"],
            clusters=spec["clusters"],
            cluster_size=spec["cluster_size"],
            filler_group_size=spec["filler_group_size"],
            seed=7,
        )

    # Warm-up + best-of-5 (measure_best): the former 3-run medians moved
    # ~60% between CI runs — two slow runs out of three shift a median
    # wholesale — which made this speedup gate flake.  The slow global
    # arm keeps its configured repeat count (one marriage run is ~3 s)
    # with no warm-up; taking its best run is the conservative direction
    # for the ratio.
    global_result, global_best, global_runs = measure_best(
        lambda: clean(fresh(), fds, decomposed=False),
        repeats=spec["global_runs"], warmup=0,
    )
    serial_result, serial_best, _ = measure_best(lambda: clean(fresh(), fds))
    parallel_result, parallel_best, parallel_runs = measure_best(
        lambda: clean(fresh(), fds, parallel=4)
    )
    benchmark.pedantic(
        clean, args=(fresh(), fds), kwargs={"parallel": 4}, rounds=1, iterations=1
    )

    speedup = global_best / parallel_best
    print_table(
        f"PR-2 — clustered conflicts, decomposed vs global ({config})",
        ("path", "best", "distance", "optimal"),
        [
            ("global (PR-1)", f"{global_best * 1e3:.0f} ms",
             f"{global_result.distance:g}", global_result.optimal),
            ("decomposed serial", f"{serial_best * 1e3:.0f} ms",
             f"{serial_result.distance:g}", serial_result.optimal),
            ("decomposed --parallel 4", f"{parallel_best * 1e3:.0f} ms",
             f"{parallel_result.distance:g}", parallel_result.optimal),
        ],
    )
    record_bench(
        "BENCH_scaling.json",
        config,
        parallel_best,
        runs_s=parallel_runs,
        global_best_s=round(global_best, 6),
        serial_best_s=round(serial_best, 6),
        speedup=round(speedup, 2),
        components=spec["clusters"],
        distance=parallel_result.distance,
    )
    assert parallel_result.distance == global_result.distance
    assert parallel_result.distance == serial_result.distance
    assert speedup >= spec["min_speedup"]


def test_conflict_index_reuse(benchmark):
    """The conflict substrate is built once per ``(table, Δ)`` and shared:
    assessment, the 2-approximation, and any batched entry point all read
    the same cached ConflictIndex.  Benchmarks the warm path and checks
    cache identity plus cross-entry-point consistency."""
    import time

    from repro.core.approx import approx_s_repair
    from repro.pipeline import assess as assess_fn

    fds = FAMILIES["marriage"]
    table = planted_violations_table(
        ("A", "B", "C"), fds, 5_000, corruption=0.08, domain=20, seed=11
    )

    start = time.perf_counter()
    index = table.conflict_index(fds)
    cold = time.perf_counter() - start

    assert table.conflict_index(fds) is index  # cached, not rebuilt

    report = benchmark(assess_fn, table, fds)
    approx = approx_s_repair(table, fds, index=index)
    print_table(
        "E6 — ConflictIndex reuse (5k tuples)",
        ("cold build", "conflicts", "approx distance ≤ upper bound"),
        [
            (
                f"{cold * 1e3:.1f} ms",
                index.num_edges,
                f"{approx.distance:g} ≤ {report.upper_bound:g}",
            )
        ],
    )
    assert report.conflict_count == index.num_edges
    assert approx.distance <= report.upper_bound + 1e-9
