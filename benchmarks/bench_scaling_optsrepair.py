"""E6 — Theorem 3.2: ``OptSRepair`` terminates in polynomial time.

Paper claims reproduced: the algorithm's runtime grows polynomially with
|T| on every simplification path (common lhs, consensus, lhs marriage and
the chain composition).  We measure a size sweep and assert near-linear
empirical scaling (doubling |T| must not blow up the per-tuple cost), in
contrast to the exponential-in-the-worst-case exact baseline on hard FD
sets.
"""

import time

import pytest

from repro.core.fd import FDSet
from repro.core.srepair import opt_s_repair
from repro.datagen.synthetic import planted_violations_table

from conftest import print_table

FAMILIES = {
    "chain (common lhs+consensus)": FDSet("A -> B; A B -> C"),
    "marriage": FDSet("A -> B; B -> A; B -> C"),
    "consensus": FDSet("-> A; B -> C"),
}

SIZES = (100, 200, 400, 800)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_scaling_polynomial(benchmark, family):
    fds = FAMILIES[family]
    tables = {
        n: planted_violations_table(
            ("A", "B", "C"), fds, n, corruption=0.1, domain=5, seed=n
        )
        for n in SIZES
    }

    benchmark(opt_s_repair, fds, tables[SIZES[-1]])

    rows = []
    per_tuple = []
    for n in SIZES:
        start = time.perf_counter()
        opt_s_repair(fds, tables[n])
        elapsed = time.perf_counter() - start
        per_tuple.append(elapsed / n)
        rows.append((n, f"{elapsed * 1e3:.2f} ms", f"{elapsed / n * 1e6:.2f} µs"))
    print_table(
        f"E6 / Theorem 3.2 — OptSRepair scaling ({family})",
        ("|T|", "time", "time / tuple"),
        rows,
    )
    # Polynomial (near-linear) shape: per-tuple cost must not explode.
    # Allow generous noise; an exponential algorithm would exceed this by
    # orders of magnitude over an 8× size range.
    assert per_tuple[-1] <= per_tuple[0] * 30


def test_production_scale_smoke(benchmark):
    """20 000 tuples: OptSRepair solves in well under a second, and the
    polynomial assessment brackets (here: certifies) the optimal cost."""
    from repro.pipeline import assess

    fds = FAMILIES["chain (common lhs+consensus)"]
    table = planted_violations_table(
        ("A", "B", "C"), fds, 20_000, corruption=0.05, domain=30, seed=7
    )
    repair = benchmark.pedantic(opt_s_repair, args=(fds, table), rounds=1, iterations=1)
    optimum = table.dist_sub(repair)
    report = assess(table, fds)
    print_table(
        "E6 — production-scale smoke (20k tuples)",
        ("|T|", "optimal cost", "assessment bracket", "tight?"),
        [
            (
                len(table),
                f"{optimum:g}",
                f"[{report.lower_bound:g}, {report.upper_bound:g}]",
                report.bracket_is_tight,
            )
        ],
    )
    assert report.lower_bound <= optimum <= report.upper_bound


def test_conflict_index_reuse(benchmark):
    """The conflict substrate is built once per ``(table, Δ)`` and shared:
    assessment, the 2-approximation, and any batched entry point all read
    the same cached ConflictIndex.  Benchmarks the warm path and checks
    cache identity plus cross-entry-point consistency."""
    import time

    from repro.core.approx import approx_s_repair
    from repro.pipeline import assess as assess_fn

    fds = FAMILIES["marriage"]
    table = planted_violations_table(
        ("A", "B", "C"), fds, 5_000, corruption=0.08, domain=20, seed=11
    )

    start = time.perf_counter()
    index = table.conflict_index(fds)
    cold = time.perf_counter() - start

    assert table.conflict_index(fds) is index  # cached, not rebuilt

    report = benchmark(assess_fn, table, fds)
    approx = approx_s_repair(table, fds, index=index)
    print_table(
        "E6 — ConflictIndex reuse (5k tuples)",
        ("cold build", "conflicts", "approx distance ≤ upper bound"),
        [
            (
                f"{cold * 1e3:.1f} ms",
                index.num_edges,
                f"{approx.distance:g} ≤ {report.upper_bound:g}",
            )
        ],
    )
    assert report.conflict_count == index.num_edges
    assert approx.distance <= report.upper_bound + 1e-9
