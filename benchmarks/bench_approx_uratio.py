"""E12 — Theorem 4.12: the ``2·mlc(Δ)``-approximation for U-repairs.

Paper claims reproduced: the Proposition 4.4(2) construction on top of
the 2-approximate S-repair is a polynomial ``2·mlc``-approximation;
measured ratios against the exact branch & bound stay inside the bound
(and usually far inside).
"""

import statistics

import pytest

from repro.core.approx import approx_u_repair
from repro.core.exact import exact_u_repair
from repro.core.fd import FDSet
from repro.core.violations import satisfies
from repro.datagen.synthetic import planted_violations_table

from conftest import print_table

FAMILIES = {
    "{A→B, B→C} (mlc 2, bound 4)": FDSet("A -> B; B -> C"),
    "{AB→C, C→B} (mlc 2, bound 4)": FDSet("A B -> C; C -> B"),
    "{A→B, C→D} (bound 2 by Thm 4.1)": FDSet("A -> B; C -> D"),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_u_ratio_bound(benchmark, family):
    fds = FAMILIES[family]
    schema = tuple(sorted(fds.attributes))
    tables = [
        planted_violations_table(schema, fds, 8, corruption=0.25, domain=2, seed=s)
        for s in range(5)
    ]

    results = benchmark(lambda: [approx_u_repair(t, fds) for t in tables])

    rows = []
    ratios = []
    for t, res in zip(tables, results):
        assert satisfies(res.update, fds)
        opt = t.dist_upd(exact_u_repair(t, fds, node_budget=5_000_000))
        ratio = res.distance / opt if opt else 1.0
        ratios.append(ratio)
        rows.append(
            (len(t), f"{opt:g}", f"{res.distance:g}", f"{ratio:.3f}", f"{res.ratio_bound:g}")
        )
        assert res.distance <= res.ratio_bound * opt + 1e-9
    rows.append(("mean", "", "", f"{statistics.mean(ratios):.3f}", ""))
    print_table(
        f"E12 / Thm 4.12 — U-repair approximation: {family}",
        ("|T|", "optimal", "approx", "ratio", "bound"),
        rows,
    )
