"""E8 — Theorems 4.1 and 4.3: U-repair decomposition.

Paper claims reproduced:
* attribute-disjoint components repair independently and their distances
  add up (Proposition B.1) — measured equality on Example 4.2's
  ``Δ0 = {product→price, buyer→email}``-style workloads;
* consensus attributes cost nothing extra: the weighted-majority repair
  of ``cl_Δ(∅)`` composes with the remainder (Theorem 4.3).
"""

import pytest

from repro.core.fd import FDSet
from repro.core.urepair import u_repair
from repro.core.violations import satisfies
from repro.datagen.synthetic import planted_violations_table

from conftest import print_table

DELTA_0 = FDSet("product -> price; buyer -> email")
SCHEMA = ("product", "price", "buyer", "email")


def test_theorem_41_additivity(benchmark):
    tables = [
        planted_violations_table(SCHEMA, DELTA_0, 40, corruption=0.15, domain=4, seed=s)
        for s in range(6)
    ]

    results = benchmark(lambda: [u_repair(t, DELTA_0) for t in tables])

    rows = []
    for t, res in zip(tables, results):
        assert res.optimal
        assert satisfies(res.update, DELTA_0)
        d1 = u_repair(t, FDSet("product -> price")).distance
        d2 = u_repair(t, FDSet("buyer -> email")).distance
        rows.append((len(t), f"{res.distance:g}", f"{d1:g} + {d2:g} = {d1 + d2:g}"))
        assert res.distance == pytest.approx(d1 + d2)
    print_table(
        "E8 / Thm 4.1 — distance additivity over components (Δ0)",
        ("|T|", "dist(Δ0)", "dist(Δ1) + dist(Δ2)"),
        rows,
    )


def test_theorem_43_consensus_elimination(benchmark):
    fds = FDSet("-> region; product -> price")
    schema = ("region", "product", "price")
    tables = [
        planted_violations_table(schema, fds, 40, corruption=0.15, domain=4, seed=s)
        for s in range(6)
    ]

    results = benchmark(lambda: [u_repair(t, fds) for t in tables])

    rows = []
    for t, res in zip(tables, results):
        assert res.optimal
        assert satisfies(res.update, fds)
        rest = u_repair(t, FDSet("product -> price")).distance
        consensus_cost = res.distance - rest
        # Consensus cost equals the optimal majority cost on `region`.
        from repro.core.approx import consensus_majority_update

        majority = t.with_updates(consensus_majority_update(t, frozenset({"region"})))
        rows.append((len(t), f"{res.distance:g}", f"{t.dist_upd(majority):g}", f"{rest:g}"))
        assert consensus_cost == pytest.approx(t.dist_upd(majority))
    print_table(
        "E8 / Thm 4.3 — consensus attributes via weighted majority",
        ("|T|", "total dist", "consensus part", "remainder part"),
        rows,
    )
