"""E11 — Section 4.4 + Theorem 4.14: the Δ_k / Δ'_k ratio comparison.

Paper claims reproduced:

* on ``Δ_k``: our guarantee ``2·mlc = 2(k+2)`` is Θ(k) while
  Kolahi–Lakshmanan's ``(MCI+2)(2·MFS−1) = (k+2)(2k+1)`` is Θ(k²);
* on ``Δ'_k``: ours ``2⌈(k+1)/2⌉`` is Θ(k) while theirs is the constant
  9 — the two guarantees are incomparable and the combined approximation
  (taking the min) dominates both;
* measured nuance: the paper's ``MCI(Δ_k) = k`` holds for k ≥ 2; exact
  computation gives ``MCI(Δ_1) = 2`` (attribute C's core implicant), see
  EXPERIMENTS.md.
"""

import pytest

from repro.core.approx import kl_ratio, mci, mfs, our_ratio
from repro.core.fd import FDSet

from conftest import print_table


def delta_k(k: int) -> FDSet:
    lhs = " ".join(f"A{i}" for i in range(k + 1))
    parts = [f"{lhs} -> B0", "B0 -> C"]
    parts += [f"B{i} -> A0" for i in range(1, k + 1)]
    return FDSet("; ".join(parts))


def delta_prime_k(k: int) -> FDSet:
    return FDSet("; ".join(f"A{i} A{i+1} -> B{i}" for i in range(k + 1)))


KS = (1, 2, 3, 4, 5, 6, 8)


def test_delta_k_family(benchmark):
    def compute():
        return [
            (k, mfs(delta_k(k)), mci(delta_k(k)), our_ratio(delta_k(k)), kl_ratio(delta_k(k)))
            for k in KS
        ]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = []
    for k, m, c, ours, kl in rows:
        table.append((k, m, c, f"{ours:g}", kl, f"{kl / ours:.2f}"))
        assert m == k + 1
        assert c == max(k, 2)
        assert ours == 2 * (k + 2)  # Θ(k)
        if k >= 2:
            assert kl == (k + 2) * (2 * k + 1)  # Θ(k²)
    print_table(
        "E11 / §4.4 — Δ_k: ours Θ(k) vs KL Θ(k²)",
        ("k", "MFS", "MCI", "ours 2·mlc", "KL (MCI+2)(2MFS−1)", "KL/ours"),
        table,
    )
    # The gap grows linearly: KL/ours at k=8 far exceeds the k=2 gap.
    assert rows[-1][4] / rows[-1][3] > 2 * (rows[1][4] / rows[1][3])


def test_delta_prime_k_family(benchmark):
    def compute():
        return [
            (
                k,
                mfs(delta_prime_k(k)),
                mci(delta_prime_k(k)),
                our_ratio(delta_prime_k(k)),
                kl_ratio(delta_prime_k(k)),
            )
            for k in KS
        ]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = []
    for k, m, c, ours, kl in rows:
        table.append((k, m, c, f"{ours:g}", kl))
        assert m == 2 and c == 1
        assert ours == 2 * ((k + 2) // 2)  # Θ(k)
        assert kl == 9  # Θ(1)
    print_table(
        "E11 / §4.4 — Δ'_k: ours Θ(k) vs KL constant 9",
        ("k", "MFS", "MCI", "ours 2·mlc", "KL"),
        table,
    )


def test_combined_approximation_dominates(benchmark):
    def combined():
        out = []
        for k in KS:
            dk, dpk = delta_k(k), delta_prime_k(k)
            out.append(
                (
                    k,
                    min(our_ratio(dk), kl_ratio(dk)),
                    min(our_ratio(dpk), kl_ratio(dpk)),
                )
            )
        return out

    rows = benchmark.pedantic(combined, rounds=1, iterations=1)
    table = []
    for k, comb_k, comb_pk in rows:
        table.append((k, f"{comb_k:g}", f"{comb_pk:g}"))
        assert comb_k <= our_ratio(delta_k(k))
        assert comb_pk <= 9
    print_table(
        "E11 / §4.4 — combined approximation (min of both)",
        ("k", "combined on Δ_k", "combined on Δ'_k"),
        table,
    )
