"""PR-10 — what sharded execution buys, and what failover costs.

Two gates for the shard RPC layer:

1. **Scale-out ≥ 1.5× on 2 shards** (multi-core hosts).  The same
   hard-Δ component portfolio solved serially vs routed over two shard
   host subprocesses by consistent hashing.  Components are independent
   and solvers pure, so the only question is whether the RPC layer's
   costs (pickled mirrors, JSONL framing, routing) stay small enough
   for the parallelism to show.  On single-core hosts parallel
   efficiency is unmeasurable — the gate degrades to bounding the
   *sharding tax*: the sharded run must stay within 1.6× serial plus a
   small absolute epsilon.  The measured speedup is recorded either
   way, with the core count, so the CI trajectory stays honest.

2. **Failover overhead ≤ 25 % under one mid-run kill.**  A/B two
   sharded arms on fresh fleets: fault-free vs a deterministic
   ``shard.kill`` that murders shard 0 the moment its first solve
   arrives (generation-matched, so the respawned replacement lives).
   Detection, transparent re-dispatch of the in-flight solve, respawn +
   journal replay, and ring rebalance must all fit in 25 % of the
   fault-free wall time (plus an absolute epsilon for the replacement
   interpreter's fixed start cost).  Results stay byte-identical to the
   serial oracle in every arm — failover is re-derivation, never
   re-interpretation.

Results land in ``BENCH_shards.json``; both headline numbers ride the
CI >30 % regression gate.
"""

import os
import time

import pytest

from repro.core.fd import FDSet
from repro.core.table import Table
from repro.faults import FaultPlan, FaultRule
from repro.pipeline import clean
from repro.shard import ShardedExecutor

from conftest import measure_best, print_table, record_bench

SCHEMA = ("A", "B", "C")

#: Hard Δ: the conflict clusters below solve via exact branch & bound —
#: real per-component work, so both gates measure the RPC layer against
#: realistic solving, not bookkeeping.
HARD = FDSet("A -> B; B -> C")

CLUSTERS = 6
#: Sized so every cluster stays under the exact-solver threshold: ~3 s
#: of genuine branch & bound serially, which is what makes a ≤ 25 %
#: failover budget a real constraint (a respawned interpreter's fixed
#: start cost must amortise against actual solve time).
CLUSTER_SIZE = 120

SHARDS = 2
CORES = os.cpu_count() or 1


def _conflict_table():
    """CLUSTERS independent conflict clusters (distinct value spaces →
    independent components), weights varied so minimum repairs are
    unique enough that byte-identity is a real assertion."""
    import random

    rows, weights = {}, {}
    tid = 0
    for c in range(CLUSTERS):
        rng = random.Random(100 + c)
        for _ in range(CLUSTER_SIZE):
            rows[tid] = (
                f"a{c}.{rng.randrange(4)}",
                f"b{c}.{rng.randrange(8)}",
                f"x{c}.{rng.randrange(3)}",
            )
            weights[tid] = 1.0 + (tid % 3)
            tid += 1
    return Table(SCHEMA, rows, weights)


def _started_executor(**kwargs):
    ex = ShardedExecutor(SHARDS, **kwargs)
    if not ex.start():
        ex.close()
        pytest.skip("platform cannot start shard subprocesses")
    return ex


def test_scale_out_on_two_shards(benchmark):
    """Serial vs 2-shard execution of the identical portfolio.  The
    speedup gate applies only where the host can actually run the
    shards concurrently; single-core hosts gate the sharding tax."""
    table = _conflict_table()

    serial_result, serial_s, serial_runs = measure_best(
        lambda: clean(table, HARD), repeats=3, warmup=1
    )

    ex = _started_executor()
    try:
        # Fleet spawn stays untimed — it is a one-off; the arms differ
        # in where (and how concurrently) the components solve.
        shard_result, shard_s, shard_runs = measure_best(
            lambda: clean(table, HARD, executor=ex), repeats=3, warmup=1
        )
        stats = ex.supervision_stats()
    finally:
        ex.close()

    # Byte-identity first: routing may move work, never answers.
    assert shard_result.cleaned.to_string() == serial_result.cleaned.to_string()
    # And the work really crossed the RPC layer, fault-free.
    assert stats["rpcs"] > 0
    assert stats["shard_deaths"] == 0
    assert stats["degraded_local"] == 0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    speedup = serial_s / shard_s
    gated = CORES >= SHARDS
    print_table(
        f"PR-10 — scale-out on {SHARDS} shards "
        f"({CLUSTERS} hard components, {CORES} cores)",
        ("arm", "best", "runs"),
        [
            ("serial", f"{serial_s * 1e3:.0f} ms",
             " ".join(f"{t * 1e3:.0f}" for t in serial_runs)),
            (f"{SHARDS} shards", f"{shard_s * 1e3:.0f} ms",
             " ".join(f"{t * 1e3:.0f}" for t in shard_runs)),
            ("speedup", f"{speedup:.2f}×",
             "gate ≥ 1.5×" if gated else "tax gate ≤ 1.6× (1 core)"),
        ],
    )
    record_bench(
        "BENCH_shards.json",
        "scale-out-2-shards",
        shard_s,
        runs_s=shard_runs,
        serial_s=round(serial_s, 6),
        speedup=round(speedup, 2),
        cores=CORES,
        speedup_gated=gated,
        rpcs=stats["rpcs"],
    )
    if gated:
        # The acceptance gate: ≥ 1.5× on 2 shards where cores permit.
        assert speedup >= 1.5
    else:
        # Single core: no parallelism exists to measure — bound the
        # sharding tax instead (50 ms epsilon for scheduler jitter).
        assert shard_s <= serial_s * 1.6 + 0.05


def test_failover_overhead_under_25_percent(benchmark):
    """One deterministic mid-run shard kill vs fault-free, fresh fleets
    per timed run so the generation-0 kill fires every time."""
    table = _conflict_table()
    oracle = clean(table, HARD).cleaned.to_string()

    def _arm(make_plan, repeats=3):
        times = []
        stats = None
        for _ in range(repeats):
            ex = _started_executor(
                faults=make_plan(), respawn_backoff_s=0.01
            )
            try:
                start = time.perf_counter()
                result = clean(table, HARD, executor=ex)
                times.append(time.perf_counter() - start)
                stats = ex.supervision_stats()
            finally:
                ex.close()
            assert result.cleaned.to_string() == oracle
        return min(times), times, stats

    # Kill shard 0 on its 3rd message: open, reset, then the first
    # solve request murders it — maximally inconvenient (in-flight work
    # re-dispatches) without double-counting solve time in the arm.
    def _kill_plan():
        return FaultPlan([
            FaultRule("shard.kill", "kill", at=3,
                      match={"shard": 0, "generation": 0}),
        ])

    plain_s, plain_runs, plain_stats = _arm(lambda: FaultPlan([]))
    kill_s, kill_runs, kill_stats = _arm(_kill_plan)

    # The kill really fired, and the fleet really healed, every run.
    assert plain_stats["shard_deaths"] == 0
    assert kill_stats["shard_deaths"] >= 1
    assert kill_stats["respawns"] >= 1
    assert kill_stats["rerouted"] >= 1
    assert kill_stats["degraded_local"] == 0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    overhead = kill_s / plain_s - 1.0
    print_table(
        "PR-10 — failover overhead, one mid-run shard kill "
        f"({SHARDS} shards, {CLUSTERS} hard components)",
        ("arm", "best", "runs"),
        [
            ("fault-free", f"{plain_s * 1e3:.0f} ms",
             " ".join(f"{t * 1e3:.0f}" for t in plain_runs)),
            ("one shard killed mid-run", f"{kill_s * 1e3:.0f} ms",
             " ".join(f"{t * 1e3:.0f}" for t in kill_runs)),
            ("overhead", f"{overhead * 100:+.1f} %", "gate ≤ +25 %"),
        ],
    )
    record_bench(
        "BENCH_shards.json",
        "failover-one-kill-mid-run",
        kill_s,
        runs_s=kill_runs,
        fault_free_s=round(plain_s, 6),
        overhead_pct=round(overhead * 100, 2),
        shard_deaths=kill_stats["shard_deaths"],
        respawns=kill_stats["respawns"],
        rerouted=kill_stats["rerouted"],
    )
    # The acceptance gate: detection + re-dispatch + respawn + replay
    # within 25 %, plus 200 ms for the replacement interpreter's fixed
    # start cost (absolute, so small hosts are not gated on it).
    assert kill_s <= plain_s * 1.25 + 0.2
