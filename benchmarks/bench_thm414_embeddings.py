"""E18 — Theorem 4.14 (Lemmas B.6 / B.7): the family embeddings.

Paper claims reproduced: the constructions that lift U-repair hardness
to the §4.4 families preserve the optimal U-repair distance *exactly* —

* Lemma B.6: ``{A→B, B→C}`` instances embed into ``Δ_k`` with identical
  optima;
* Lemma B.7: ``Δ'_1`` instances embed into ``Δ'_k`` (k > 1) with
  identical optima.

Measured with the exact branch & bound on small random instances.
"""

import random

import pytest

from repro.core.exact import exact_u_repair
from repro.core.table import Table
from repro.reductions.urepair_families import (
    DELTA_ABC_CHAIN,
    delta_k,
    delta_prime_k,
    delta_prime_k_schema,
    embed_chain_into_delta_k,
    embed_dp1_into_dpk,
)

from conftest import print_table


def _random_table(schema, size, seed):
    rng = random.Random(seed)
    rows = [
        tuple(rng.randrange(2) for _ in schema) for _ in range(size)
    ]
    return Table.from_rows(schema, rows)


def test_lemma_b6_distance_identity(benchmark):
    tables = [_random_table(("A", "B", "C"), 4, seed) for seed in range(5)]
    fds_2 = delta_k(2)

    def solve_all():
        out = []
        for table in tables:
            embedded = embed_chain_into_delta_k(table, 2)
            src = table.dist_upd(exact_u_repair(table, DELTA_ABC_CHAIN))
            tgt = embedded.dist_upd(exact_u_repair(embedded, fds_2))
            out.append((len(table), src, tgt))
        return out

    rows = benchmark(solve_all)
    for _n, src, tgt in rows:
        assert src == pytest.approx(tgt)
    print_table(
        "E18 / Lemma B.6 — {A→B,B→C} ↪ Δ_2 preserves optima",
        ("|T|", "source U*", "embedded U*"),
        [(n, f"{s:g}", f"{t:g}") for n, s, t in rows],
    )


def test_lemma_b7_distance_identity(benchmark):
    schema = delta_prime_k_schema(1)
    tables = [_random_table(schema, 3, seed) for seed in range(5)]
    dp1, dp2 = delta_prime_k(1), delta_prime_k(2)

    def solve_all():
        out = []
        for table in tables:
            embedded = embed_dp1_into_dpk(table, 2)
            src = table.dist_upd(exact_u_repair(table, dp1))
            tgt = embedded.dist_upd(exact_u_repair(embedded, dp2))
            out.append((len(table), src, tgt))
        return out

    rows = benchmark(solve_all)
    for _n, src, tgt in rows:
        assert src == pytest.approx(tgt)
    print_table(
        "E18 / Lemma B.7 — Δ'_1 ↪ Δ'_2 preserves optima",
        ("|T|", "source U*", "embedded U*"),
        [(n, f"{s:g}", f"{t:g}") for n, s, t in rows],
    )
