"""E7 — Proposition 3.3: 2-approximate S-repairs in polynomial time.

Paper claims reproduced: the Bar-Yehuda–Even-based approximation is a
strict 2-approximation; measured ratios on planted-violation workloads
sit well inside the bound.  We also show the polynomial approximation
handles instances far beyond the exact baseline's comfort zone.
"""

import statistics

import pytest

from repro.core.approx import approx_s_repair
from repro.core.exact import exact_s_repair
from repro.core.fd import FDSet
from repro.core.violations import satisfies
from repro.datagen.synthetic import planted_violations_table

from conftest import print_table

HARD = FDSet("A -> B; B -> C")


def test_ratio_distribution(benchmark):
    tables = [
        planted_violations_table(
            ("A", "B", "C"), HARD, 30, corruption=0.2, domain=3, seed=seed
        )
        for seed in range(8)
    ]

    results = benchmark(lambda: [approx_s_repair(t, HARD) for t in tables])

    ratios = []
    rows = []
    for t, res in zip(tables, results):
        assert satisfies(res.repair, HARD)
        opt = t.dist_sub(exact_s_repair(t, HARD))
        ratio = res.distance / opt if opt else 1.0
        ratios.append(ratio)
        rows.append((len(t), f"{opt:g}", f"{res.distance:g}", f"{ratio:.3f}"))
        assert ratio <= 2.0 + 1e-9
    rows.append(
        ("mean", "", "", f"{statistics.mean(ratios):.3f}")
    )
    print_table(
        "E7 / Prop 3.3 — 2-approx S-repair ratios ({A→B, B→C})",
        ("|T|", "optimal", "approx", "ratio"),
        rows,
    )


def test_approx_scales_past_exact(benchmark):
    """The approximation is polynomial: a 2000-tuple dirty table is
    dispatched in milliseconds."""
    table = planted_violations_table(
        ("A", "B", "C"), HARD, 2000, corruption=0.05, domain=8, seed=99
    )
    result = benchmark(approx_s_repair, table, HARD)
    assert satisfies(result.repair, HARD)
    assert result.ratio_bound == 2.0
