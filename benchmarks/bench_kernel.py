"""ISSUE-4/ISSUE-5 gates — the columnar kernel vs the dict reference.

Acceptance gates, all measured best-of-5 after a warm-up run
(:func:`conftest.measure_best`), with the dict reference paths forced
via ``kernel.disabled()`` / ``use_kernel=False`` as the comparison arm
(the CLI's ``--no-kernel``):

* **Exact component solves ≤ 64** (clustered-marriage-10k component
  mix): the memoised bitset branch & bound must be ≥ 3× faster than the
  graph-copying reference over the full component mix, and return the
  identical covers (ISSUE-4).
* **Exact component solves 65–128** (caterpillar mix): the multi-word
  :class:`~repro.core.kernel.BitsetVC` must be ≥ 3× faster than the
  graph reference on components past the machine-word boundary, with
  identical covers (ISSUE-5).
* **Array-native approximation tier** (clustered-marriage-10k): the
  BYE + maximalisation and greedy lazy-heap loops on flat arrays must
  be ≥ 2× faster than the dict loops, byte-identical repairs (ISSUE-5).
* **Index build + assess** (clustered-chain-30k): the columnar
  conflict-index build plus the decomposed assessment must be ≥ 2×
  faster end-to-end than the dict build + assessment, and produce the
  identical report (ISSUE-4).

Results land in ``BENCH_kernel.json`` next to the other bench suites;
the committed baselines double as the CI regression reference (the
workflow fails on a > 30% drop of any gated ``speedup``).  For context,
the committed ``BENCH_scaling.json`` medians for the same workloads
(which *include* per-component solving on the then-dict paths) are the
PR-2/PR-3 baselines these numbers improve on.
"""

import random

import pytest

from repro.core import kernel
from repro.core.approx import approx_s_repair, greedy_s_repair
from repro.core.conflict_index import ConflictIndex
from repro.core.decompose import decompose
from repro.core.exact import exact_cover_of_index
from repro.core.fd import FDSet
from repro.core.table import Table
from repro.datagen.synthetic import clustered_conflicts_table
from repro.graphs.vertex_cover import exact_min_weight_vertex_cover
from repro.pipeline import assess

from conftest import measure_best, print_table, record_bench

CHAIN = FDSet("A -> B; A B -> C")
MARRIAGE = FDSet("A -> B; B -> A; B -> C")


def _chain_30k():
    return clustered_conflicts_table(
        ("A", "B", "C"), 30_000, clusters=200, cluster_size=25,
        filler_group_size=40, seed=7,
    )


def _marriage_10k(weighted=False):
    return clustered_conflicts_table(
        ("A", "B", "C"), 10_000, clusters=120, cluster_size=25,
        filler_group_size=100, seed=7, weighted=weighted,
    )


def _caterpillar_65_128(clusters=24, seed=3):
    """*clusters* connected conflict components of 65–128 tuples each —
    chained 3-cliques under the marriage Δ, the multi-word workload the
    ISSUE-5 exact gate runs on."""
    rng = random.Random(seed)
    rows = {}
    tid = 0
    for c in range(clusters):
        n = 65 + (c * 9) % 64
        for j in range(n):
            rows[tid] = (f"a{c}.{j // 3}", f"b{c}.{(j + 1) // 3}", f"x{c}")
            tid += 1
    weights = {i: rng.choice([1.0, 2.0, 0.5, 3.0]) for i in rows}
    return Table(("A", "B", "C"), rows, weights)


def test_bitmask_exact_3x_on_marriage_component_mix(benchmark):
    """Gate 1: ≥ 3× on the exact solves of the clustered-marriage-10k
    component mix, identical covers."""
    table = _marriage_10k()
    components = decompose(table, MARRIAGE).components
    assert len(components) == 120

    def solve_kernel():
        return [exact_cover_of_index(c.index) for c in components]

    def solve_reference():
        out = []
        for c in components:
            cover = exact_min_weight_vertex_cover(c.index.graph())
            out.append([tid for tid in c.index.ids() if tid in cover])
        return out

    kernel_covers, kernel_s, kernel_runs = measure_best(solve_kernel)
    reference_covers, reference_s, _ = measure_best(solve_reference)
    benchmark.pedantic(solve_kernel, rounds=1, iterations=1)

    speedup = reference_s / kernel_s
    print_table(
        "ISSUE-4 — exact component solves, bitmask kernel vs Graph B&B "
        "(marriage-10k mix)",
        ("path", "best of 5", "components", "identical covers"),
        [
            ("bitmask kernel", f"{kernel_s * 1e3:.1f} ms", len(components),
             kernel_covers == reference_covers),
            ("Graph branch & bound", f"{reference_s * 1e3:.1f} ms",
             len(components), ""),
            ("speedup", f"{speedup:.1f}×", "", ""),
        ],
    )
    record_bench(
        "BENCH_kernel.json",
        "exact-components-marriage-10k",
        kernel_s,
        runs_s=kernel_runs,
        reference_best_s=round(reference_s, 6),
        speedup=round(speedup, 2),
        components=len(components),
    )
    assert kernel_covers == reference_covers
    assert speedup >= 3.0


def test_multiword_exact_3x_on_65_128_mix(benchmark):
    """ISSUE-5 gate (a): ≥ 3× on exact solves of 65–128-vertex
    components — multi-word bitset territory — identical covers."""
    table = _caterpillar_65_128()
    components = decompose(table, MARRIAGE).components
    sizes = sorted(c.size for c in components)
    assert sizes[0] >= 65 and sizes[-1] <= 128 and len(components) == 24

    def solve_kernel():
        return [exact_cover_of_index(c.index) for c in components]

    def solve_reference():
        out = []
        for c in components:
            cover = exact_min_weight_vertex_cover(c.index.graph())
            out.append([tid for tid in c.index.ids() if tid in cover])
        return out

    kernel_covers, kernel_s, kernel_runs = measure_best(solve_kernel)
    reference_covers, reference_s, _ = measure_best(solve_reference)
    benchmark.pedantic(solve_kernel, rounds=1, iterations=1)

    speedup = reference_s / kernel_s
    print_table(
        "ISSUE-5 — exact solves past 64 vertices, BitsetVC vs Graph B&B "
        "(65–128-tuple caterpillar mix)",
        ("path", "best of 5", "components", "identical covers"),
        [
            ("multi-word BitsetVC", f"{kernel_s * 1e3:.1f} ms",
             len(components), kernel_covers == reference_covers),
            ("Graph branch & bound", f"{reference_s * 1e3:.1f} ms",
             len(components), ""),
            ("speedup", f"{speedup:.1f}×", "", ""),
        ],
    )
    record_bench(
        "BENCH_kernel.json",
        "exact-components-65-128",
        kernel_s,
        runs_s=kernel_runs,
        reference_best_s=round(reference_s, 6),
        speedup=round(speedup, 2),
        components=len(components),
        largest=sizes[-1],
    )
    assert kernel_covers == reference_covers
    assert speedup >= 3.0


def test_array_approx_loops_2x_on_marriage_10k(benchmark):
    """ISSUE-5 gate (b): ≥ 2× on the approximation tier — BYE +
    maximalisation and the greedy lazy-heap loop — byte-identical
    repairs on the array paths and the dict reference."""
    table = _marriage_10k(weighted=True)
    kernel_index = table.conflict_index(MARRIAGE)
    assert kernel_index._kernel is not None
    dict_table = Table(table.schema, table.rows(), table.weights())
    dict_index = ConflictIndex(dict_table, MARRIAGE, use_kernel=False)

    def arm(tab, index):
        def run():
            return (
                approx_s_repair(tab, MARRIAGE, index=index),
                greedy_s_repair(tab, MARRIAGE, index=index),
            )
        return run

    kernel_res, kernel_s, kernel_runs = measure_best(arm(table, kernel_index))
    dict_res, dict_s, _ = measure_best(arm(dict_table, dict_index))
    benchmark.pedantic(arm(table, kernel_index), rounds=1, iterations=1)

    identical = (
        kernel_res[0].repair == dict_res[0].repair
        and kernel_res[1].repair == dict_res[1].repair
        and kernel_res[0].distance == dict_res[0].distance
        and kernel_res[1].distance == dict_res[1].distance
    )
    speedup = dict_s / kernel_s
    print_table(
        "ISSUE-5 — approximation tier (BYE+MIS, greedy heap), arrays vs "
        "dicts (marriage-10k)",
        ("path", "best of 5", "identical repairs"),
        [
            ("flat arrays", f"{kernel_s * 1e3:.1f} ms", identical),
            ("dict reference", f"{dict_s * 1e3:.1f} ms", ""),
            ("speedup", f"{speedup:.1f}×", ""),
        ],
    )
    record_bench(
        "BENCH_kernel.json",
        "approx-greedy-marriage-10k",
        kernel_s,
        runs_s=kernel_runs,
        reference_best_s=round(dict_s, 6),
        speedup=round(speedup, 2),
    )
    assert identical
    assert speedup >= 2.0


def test_kernel_build_and_assess_2x_on_chain_30k(benchmark):
    """Gate 2: ≥ 2× on cold index build + decomposed assess, chain-30k,
    identical report.

    Each timed run starts from a fresh table (cold caches): the measured
    quantity is exactly what a first-contact ``fdrepair assess`` pays.
    Tables are pre-built outside the timers.
    """
    runs = 6  # 1 warm-up + 5 timed, per arm

    def arm(use_kernel):
        tables = iter([_chain_30k() for _ in range(runs)])

        def run():
            table = next(tables)
            if use_kernel:
                return assess(table, CHAIN)
            with kernel.disabled():
                return assess(table, CHAIN)

        return run

    kernel_report, kernel_s, kernel_runs = measure_best(arm(True))
    dict_report, dict_s, _ = measure_best(arm(False))
    benchmark.pedantic(arm(True), rounds=1, iterations=1)

    speedup = dict_s / kernel_s
    print_table(
        "ISSUE-4 — cold index build + assess, kernel vs dict (chain-30k)",
        ("path", "best of 5", "bracket", "identical report"),
        [
            ("columnar kernel", f"{kernel_s * 1e3:.0f} ms",
             f"[{kernel_report.lower_bound:g}, {kernel_report.upper_bound:g}]",
             kernel_report == dict_report),
            ("dict reference", f"{dict_s * 1e3:.0f} ms",
             f"[{dict_report.lower_bound:g}, {dict_report.upper_bound:g}]", ""),
            ("speedup", f"{speedup:.1f}×", "", ""),
        ],
    )
    record_bench(
        "BENCH_kernel.json",
        "build-assess-chain-30k",
        kernel_s,
        runs_s=kernel_runs,
        reference_best_s=round(dict_s, 6),
        speedup=round(speedup, 2),
        components=kernel_report.component_count,
    )
    assert kernel_report == dict_report
    assert speedup >= 2.0


def test_bye_and_components_fast_paths_identical(benchmark):
    """The array fast paths (CSR components, CSR/bitmask BYE) answer
    exactly like the dict reference on the full 30k index."""
    from repro.graphs.vertex_cover import bar_yehuda_even

    table = _chain_30k()
    index = table.conflict_index(CHAIN)
    assert index._kernel is not None

    fast_components, fast_s, _ = measure_best(index.components, repeats=3)
    fast_cover = bar_yehuda_even(index)

    from repro.core.conflict_index import ConflictIndex

    dict_index = ConflictIndex(_chain_30k(), CHAIN, use_kernel=False)
    slow_components, slow_s, _ = measure_best(dict_index.components, repeats=3)
    slow_cover = bar_yehuda_even(dict_index)

    benchmark.pedantic(index.components, rounds=1, iterations=1)
    print_table(
        "ISSUE-4 — components()/BYE array fast paths (chain-30k)",
        ("path", "components best-of-3", "components", "BYE cover size"),
        [
            ("CSR arrays", f"{fast_s * 1e3:.1f} ms", len(fast_components),
             len(fast_cover)),
            ("dict sweep", f"{slow_s * 1e3:.1f} ms", len(slow_components),
             len(slow_cover)),
        ],
    )
    record_bench(
        "BENCH_kernel.json",
        "components-csr-chain-30k",
        fast_s,
        dict_s=round(slow_s, 6),
    )
    assert fast_components == slow_components
    assert fast_cover == slow_cover
