"""E17 (ablation) — the substrate design choices DESIGN.md calls out.

Three choices are ablated:

1. **Hungarian matching in ``MarriageRep``** vs a greedy heaviest-edge
   matching: greedy is provably suboptimal on the classic assignment
   trap, which translates directly into a suboptimal S-repair.
2. **The matching lower bound in the exact U-repair branch & bound**:
   without it, the Theorem 4.10 triangle instance explodes (this is the
   pruning that makes experiment E10 feasible).
3. **Bar-Yehuda–Even vs greedy vertex cover**: BYE's ratio is always ≤ 2
   while weight/degree greedy can exceed it on weighted stars.
"""

import time

import pytest

from repro.core.exact import ExactSearchLimit, exact_u_repair
from repro.core.fd import FDSet
from repro.core.srepair import opt_s_repair
from repro.core.table import Table
from repro.graphs.graph import Graph
from repro.graphs.vertex_cover import (
    bar_yehuda_even,
    exact_min_weight_vertex_cover,
    greedy_vertex_cover,
)
from repro.reductions.vc_upd import (
    DELTA_A_IFF_B_TO_C,
    cover_to_update,
    graph_to_table,
)

from conftest import measure_best, measure_median, print_table, record_bench


def test_hungarian_beats_greedy_matching(benchmark):
    """The assignment trap: blocks (a1,b1)=5, (a1,b2)=4, (a2,b1)=4.
    Greedy pairing keeps weight 5; the Hungarian matching inside
    MarriageRep keeps 8."""
    fds = FDSet("A -> B; B -> A")
    table = Table(
        ("A", "B"),
        {
            1: ("a1", "b1"),
            2: ("a1", "b2"),
            3: ("a2", "b1"),
        },
        {1: 5.0, 2: 4.0, 3: 4.0},
    )

    repair, median_s, runs_s = measure_median(lambda: opt_s_repair(fds, table))
    benchmark.pedantic(opt_s_repair, args=(fds, table), rounds=1, iterations=1)
    kept = repair.total_weight()
    record_bench(
        "BENCH_ablation.json",
        "marriage-hungarian-matching",
        median_s,
        runs_s=runs_s,
        kept_weight=kept,
    )

    # Greedy heaviest-edge matching baseline.
    blocks = {("a1", "b1"): 5.0, ("a1", "b2"): 4.0, ("a2", "b1"): 4.0}
    greedy_kept = 0.0
    used_a, used_b = set(), set()
    for (a, b), w in sorted(blocks.items(), key=lambda kv: -kv[1]):
        if a not in used_a and b not in used_b:
            greedy_kept += w
            used_a.add(a)
            used_b.add(b)

    print_table(
        "E17 — MarriageRep matching ablation",
        ("strategy", "kept weight", "deleted weight"),
        [
            ("Hungarian (ours)", f"{kept:g}", f"{table.total_weight() - kept:g}"),
            ("greedy heaviest-edge", f"{greedy_kept:g}", f"{table.total_weight() - greedy_kept:g}"),
        ],
    )
    assert kept == 8.0
    assert greedy_kept == 5.0


def test_matching_lower_bound_prunes(benchmark):
    """Without the matching lower bound, the K3 instance of Theorem 4.10
    blows past a node budget that the bounded search finishes well
    inside."""
    g = Graph.from_edges([("u", "v"), ("v", "w"), ("u", "w")])
    table = graph_to_table(g)
    cover = set(exact_min_weight_vertex_cover(g))
    ub = table.dist_upd(cover_to_update(table, g, cover)) + 0.5

    stats_with = {}
    start = time.perf_counter()
    result = benchmark.pedantic(
        exact_u_repair,
        args=(table, DELTA_A_IFF_B_TO_C),
        kwargs={"upper_bound": ub, "node_budget": 30_000_000, "stats": stats_with},
        rounds=1,
        iterations=1,
    )
    elapsed_with = time.perf_counter() - start
    nodes_with = stats_with["nodes"]

    stats_without = {}
    budget = max(4 * nodes_with, 100_000)
    try:
        exact_u_repair(
            table,
            DELTA_A_IFF_B_TO_C,
            upper_bound=ub,
            node_budget=budget,
            use_lower_bound=False,
            stats=stats_without,
        )
        nodes_without = stats_without["nodes"]
    except ExactSearchLimit:
        nodes_without = f"> {budget} (aborted)"

    print_table(
        "E17 — exact U-repair branch & bound: matching-LB ablation (K3)",
        ("variant", "search nodes"),
        [("with matching LB", nodes_with), ("without", nodes_without)],
    )
    record_bench(
        "BENCH_ablation.json",
        "exact-urepair-matching-lb",
        elapsed_with,
        nodes_with_lb=nodes_with,
        nodes_without_lb=str(nodes_without),
    )
    assert table.dist_upd(result) == 8.0
    if isinstance(nodes_without, int):
        assert nodes_without > nodes_with


def test_bye_vs_greedy_vertex_cover(benchmark):
    """Weighted star: hub weight 10, five leaves weight 3.  Optimal cover
    is the hub (10).  The measured contrast: BYE lands near its worst
    case (ratio 1.9) but is *guaranteed* ≤ 2; greedy happens to be
    optimal here yet carries no bound at all (it is Θ(log n) off in the
    worst case) — guarantee vs luck is the ablation's point."""
    g = Graph()
    g.add_node("hub", weight=10.0)
    for i in range(5):
        g.add_node(f"leaf{i}", weight=3.0)
        g.add_edge("hub", f"leaf{i}")

    bye, median_s, runs_s = measure_median(lambda: bar_yehuda_even(g))
    benchmark.pedantic(bar_yehuda_even, args=(g,), rounds=1, iterations=1)
    greedy = greedy_vertex_cover(g)
    optimum = g.total_weight(exact_min_weight_vertex_cover(g))
    record_bench(
        "BENCH_ablation.json",
        "vertex-cover-bye-vs-greedy",
        median_s,
        runs_s=runs_s,
        bye_weight=g.total_weight(bye),
        greedy_weight=g.total_weight(greedy),
        optimum=optimum,
    )

    print_table(
        "E17 — vertex cover ablation (weighted star)",
        ("algorithm", "cover weight", "ratio"),
        [
            ("exact B&B", f"{optimum:g}", "1.00"),
            ("Bar-Yehuda–Even", f"{g.total_weight(bye):g}", f"{g.total_weight(bye) / optimum:.2f}"),
            ("greedy w/deg", f"{g.total_weight(greedy):g}", f"{g.total_weight(greedy) / optimum:.2f}"),
        ],
    )
    assert g.is_vertex_cover(bye)
    assert g.total_weight(bye) <= 2 * optimum


def test_incremental_index_vs_rebuild_per_deletion(benchmark):
    """E17 addendum — the ConflictIndex substrate itself.

    Greedy conflict-driven deletion needs fresh violation state after
    every deletion.  The seed substrate rebuilt the lhs/rhs groupings
    from scratch each time (O(|T|·|Δ|) per deletion); the ConflictIndex
    evicts the tuple from its buckets and adjacency in
    O(degree + |Δ|).  Both loops pick victims by the same rule, so the
    incremental variant's distance can only match or beat the rebuild
    baseline's (greedy_s_repair additionally re-adds conflict-free
    victims via maximalisation).
    """
    import time

    from repro.core.approx import greedy_s_repair
    from repro.core.violations import conflict_graph
    from repro.datagen.synthetic import planted_violations_table

    fds = FDSet("A -> B; B -> C")
    table = planted_violations_table(
        ("A", "B", "C"), fds, 600, corruption=0.15, domain=6, seed=17
    )

    benchmark(greedy_s_repair, table, fds)

    # Honest cold-vs-cold comparison: both sides run on a fresh table
    # object (empty derived caches), and the incremental side's timing
    # includes its one-time O(|T|·|Δ|) index build.  Warm best-of-5 for
    # the gated (fast) arm; the rebuild baseline below is seconds per
    # run and asymptotically ~80× slower, so one shot suffices there.
    def run_incremental():
        return greedy_s_repair(table.subset(list(table.ids())), fds)

    incremental, incremental_time, _ = measure_best(run_incremental)

    # Seed-style baseline: rebuild the conflict structure per deletion.
    cold_table = table.subset(list(table.ids()))
    start = time.perf_counter()
    kept = list(cold_table.ids())
    while True:
        graph = conflict_graph(cold_table.subset(kept), fds)
        if graph.num_edges() == 0:
            break
        victim = min(
            (tid for tid in graph.nodes() if graph.degree(tid) > 0),
            key=lambda tid: (graph.weight(tid) / graph.degree(tid), str(tid)),
        )
        kept.remove(victim)
    rebuild_time = time.perf_counter() - start

    baseline_deleted = table.total_weight() - table.subset(kept).total_weight()
    print_table(
        "E17 — greedy deletion: incremental index vs per-deletion rebuild",
        ("substrate", "time", "deleted weight"),
        [
            ("incremental ConflictIndex", f"{incremental_time * 1e3:.1f} ms",
             f"{incremental.distance:g}"),
            ("rebuild per deletion", f"{rebuild_time * 1e3:.1f} ms",
             f"{baseline_deleted:g}"),
        ],
    )
    record_bench(
        "BENCH_ablation.json",
        "greedy-incremental-vs-rebuild",
        incremental_time,
        rebuild_s=round(rebuild_time, 6),
        incremental_deleted=incremental.distance,
        rebuild_deleted=baseline_deleted,
    )
    # Same victim rule; maximalisation can only help the incremental side.
    assert incremental.distance <= baseline_deleted + 1e-9
    # Generous headroom: single-shot wall-clock timings on a shared CI
    # runner can wobble, but the rebuild loop is asymptotically worse.
    assert incremental_time <= rebuild_time * 2


def test_projection_and_copy_fast_paths(benchmark):
    """E17 addendum (PR-3) — ConflictIndex.project()/copy() micro-audit.

    The streaming session re-decomposes per delta, so projection cost is
    on the per-append hot path.  Since PR-3, ``project()`` defers its
    per-FD bucket rebuild until something actually reads or mutates the
    buckets — the vertex-cover solvers and cache-hit components are
    adjacency-only, so in the common case the buckets the session fast
    path already holds (on the parent index) are never re-derived.  The
    regression gate: projecting *every* component must stay well under
    one from-scratch index build, and must leave every projection's
    buckets unmaterialised.
    """
    from repro.core.conflict_index import ConflictIndex
    from repro.datagen.synthetic import clustered_conflicts_table

    fds = FDSet("A -> B; B -> C")
    table = clustered_conflicts_table(
        ("A", "B", "C"), 10_000, clusters=100, cluster_size=25,
        filler_group_size=80, seed=3,
    )

    # Gated ratios below run warm best-of-5 (see measure_best): the
    # 3-run medians this file used before spread enough on CI to flake.
    build, build_s, _ = measure_best(lambda: ConflictIndex(table, fds))
    index = table.conflict_index(fds)
    components = index.components()

    def project_all():
        out = []
        for ids in components:
            subtable = table.subset(ids)
            subtable._cache.clear()  # a fresh projection every run
            out.append(index.project(subtable, set(ids)))
        return out

    projected, project_s, runs_s = measure_best(project_all)
    benchmark.pedantic(project_all, rounds=1, iterations=1)
    assert all(sub._buckets is None for sub in projected), (
        "projection must not re-derive buckets eagerly"
    )
    # Reading violating pairs still works (materialise-on-demand) and
    # matches a from-scratch sub-index.
    sample = projected[0]
    rebuilt = ConflictIndex(table.subset(components[0]), fds)
    assert sorted(map(str, sample.violating_pairs())) == sorted(
        map(str, rebuilt.violating_pairs())
    )

    copy_, copy_s, _ = measure_best(index.copy)
    print_table(
        "E17 — index substrate fast paths (10k tuples, 100 components)",
        ("operation", "median"),
        [
            ("from-scratch build", f"{build_s * 1e3:.1f} ms"),
            ("project all components (lazy)", f"{project_s * 1e3:.1f} ms"),
            ("copy live index", f"{copy_s * 1e3:.1f} ms"),
        ],
    )
    record_bench(
        "BENCH_ablation.json",
        "index-project-copy-fast-paths",
        project_s,
        runs_s=runs_s,
        build_s=round(build_s, 6),
        copy_s=round(copy_s, 6),
        components=len(components),
    )
    # Regression gates: the session fast path depends on projection (all
    # components together) and copy staying decisively under a rebuild.
    assert project_s <= build_s / 2
    assert copy_s <= build_s
