"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file reproduces one experiment of DESIGN.md's
per-experiment index (E1–E15).  Benchmarks both *time* the operation via
pytest-benchmark and *assert* the paper's qualitative claim (who wins, by
roughly what factor, where the crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the paper-style result tables each experiment prints.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render a small fixed-width results table (paper-style)."""
    rows = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n== {title} ==")
    print(line)
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
