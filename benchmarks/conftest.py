"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file reproduces one experiment of DESIGN.md's
per-experiment index (E1–E15).  Benchmarks both *time* the operation via
pytest-benchmark and *assert* the paper's qualitative claim (who wins, by
roughly what factor, where the crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the paper-style result tables each experiment prints.

``print_table`` (and the shared FD-set constants) live in
:mod:`repro.testing`; they are re-exported here so the benchmarks'
``from conftest import print_table`` keeps working under the benchmarks
rootdir.

Machine-readable results: benchmarks call :func:`record_bench` to append
median wall times per configuration into ``BENCH_<name>.json`` (written
to ``$BENCH_JSON_DIR``, default the working directory).  The CI
bench-smoke job uploads these files as artifacts, so the perf trajectory
of the repo is recorded run over run.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

import pytest

from repro.testing import (  # noqa: F401 — re-exported for bench modules
    DELTA_A_IFF_B_TO_C,
    DELTA_SSN,
    EXAMPLE_38,
    print_table,
    random_small_table,
)

__all__ = [
    "DELTA_A_IFF_B_TO_C",
    "DELTA_SSN",
    "EXAMPLE_38",
    "print_table",
    "random_small_table",
    "measure_median",
    "measure_best",
    "bench_environment",
    "record_bench",
]


def bench_environment() -> Dict[str, object]:
    """The environment fingerprint stamped into every ``BENCH_*.json``.

    The CI regression gate compares fresh results against committed
    baselines; a comparison across different Python versions or with the
    kernel toggled measures the environment, not the change under test.
    Stamping the fingerprint lets the gate *skip* (rather than fail)
    cross-environment comparisons: python ``major.minor`` and the kernel
    flag must match for the gate to judge, CPU count mismatches only
    warn (they move absolute times but rarely flip a within-run
    speedup).
    """
    from repro.core import kernel

    return {
        "python": ".".join(platform.python_version_tuple()[:2]),
        "cpu_count": os.cpu_count(),
        "kernel": kernel.enabled(),
    }


#: Wall-clock origin for the currently running benchmark test; reset by
#: the autouse fixture below so :func:`record_bench` can stamp how many
#: seconds the *whole* bench (data generation, warm-ups, every arm)
#: cost — the number one needs to budget a CI bench-smoke job, which
#: none of the per-arm timings contain.
_TEST_START = time.perf_counter()


@pytest.fixture(autouse=True)
def _bench_wall_clock():
    global _TEST_START
    _TEST_START = time.perf_counter()
    yield


def measure_median(fn: Callable, repeats: int = 3) -> Tuple[object, float, list]:
    """Run *fn* *repeats* times; return (last result, median seconds,
    all wall times)."""
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return result, statistics.median(times), times


def measure_best(
    fn: Callable, repeats: int = 5, warmup: int = 1
) -> Tuple[object, float, list]:
    """Run *fn* *warmup* untimed times then *repeats* timed times; return
    (last result, best seconds, all timed wall times).

    The measurement the CI speedup gates use: a 3-run *median* still
    moves ~60% between runs on a loaded CI box (two slow runs out of
    three shift it wholesale), while the *minimum* of five warm runs
    estimates the code's intrinsic cost — noise only ever adds time, so
    the fastest observation is the most repeatable one.  Gates compare
    best-vs-best of their two arms.
    """
    result = None
    for _ in range(warmup):
        result = fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return result, min(times), times


def record_bench(
    json_name: str,
    config: str,
    median_s: float,
    runs_s: Optional[Sequence[float]] = None,
    **extra,
) -> None:
    """Merge one configuration's result into ``BENCH_<name>.json``.

    Read-modify-write so every test contributes to one file per suite;
    keys are configuration names, values hold ``median_s`` — the
    suite's headline seconds for that configuration (historically a
    median, best-of-5 for the gated benches since the measure_best
    switch; the field name stays put so the CI perf trajectory remains
    one series) — plus ``wall_s``, the wall-clock seconds from the
    enclosing test's start to this record (data generation and warm-ups
    included), and whatever context the benchmark adds.  Every
    write refreshes the file's ``environment`` stamp
    (:func:`bench_environment`) so the regression gate can recognise —
    and skip — cross-environment comparisons.
    """
    path = os.path.join(os.environ.get("BENCH_JSON_DIR", "."), json_name)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        data = {}
    data["environment"] = bench_environment()
    results = data.setdefault("results", {})
    entry = {
        "median_s": round(median_s, 6),
        "wall_s": round(time.perf_counter() - _TEST_START, 3),
    }
    if runs_s is not None:
        entry["runs_s"] = [round(t, 6) for t in runs_s]
    entry.update(extra)
    results[config] = entry
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True, ensure_ascii=False)
        handle.write("\n")
