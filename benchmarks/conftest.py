"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file reproduces one experiment of DESIGN.md's
per-experiment index (E1–E15).  Benchmarks both *time* the operation via
pytest-benchmark and *assert* the paper's qualitative claim (who wins, by
roughly what factor, where the crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the paper-style result tables each experiment prints.

``print_table`` (and the shared FD-set constants) live in
:mod:`repro.testing`; they are re-exported here so the benchmarks'
``from conftest import print_table`` keeps working under the benchmarks
rootdir.
"""

from __future__ import annotations

from repro.testing import (  # noqa: F401 — re-exported for bench modules
    DELTA_A_IFF_B_TO_C,
    DELTA_SSN,
    EXAMPLE_38,
    print_table,
    random_small_table,
)
