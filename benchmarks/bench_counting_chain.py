"""E16 (extension) — the chain counting dichotomy recalled in §2.2.

The paper reuses Livshits & Kimelfeld's result that chain FD sets are
exactly the FD sets whose subset repairs can be *counted* in polynomial
time.  Claims reproduced:

* the polynomial sum/product recursion matches brute-force enumeration
  of maximal independent sets on chain FD sets;
* Figure 1's table has exactly two subset repairs — S1 and S2;
* the two dichotomies differ: ``{A→B, B→A}`` is PTIME for *optimal*
  S-repairs (lhs marriage) but non-chain, so counting falls back to
  enumeration;
* polynomial scaling of the counting recursion vs the exponential
  baseline.
"""

import pytest

from repro.core.counting import (
    NotChainError,
    brute_force_count_s_repairs,
    count_s_repairs,
)
from repro.core.dichotomy import osr_succeeds
from repro.core.fd import FDSet
from repro.datagen.office import office_fds, office_table
from repro.datagen.synthetic import planted_violations_table

from conftest import print_table

CHAIN = FDSet("A -> B; A B -> C")


def test_chain_count_matches_brute_force(benchmark):
    tables = [
        planted_violations_table(("A", "B", "C"), CHAIN, 12, corruption=0.3, domain=2, seed=s)
        for s in range(6)
    ]

    counts = benchmark(lambda: [count_s_repairs(t, CHAIN) for t in tables])

    rows = []
    for t, fast in zip(tables, counts):
        slow = brute_force_count_s_repairs(t, CHAIN)
        rows.append((len(t), fast, slow))
        assert fast == slow
    print_table(
        "E16 — chain counting vs maximal-IS enumeration",
        ("|T|", "chain recursion", "brute force"),
        rows,
    )


def test_office_has_two_repairs(benchmark):
    count = benchmark(count_s_repairs, office_table(), office_fds())
    print_table(
        "E16 — Figure 1 subset repairs",
        ("table", "repairs", "expected (S1, S2)"),
        [("Office", count, 2)],
    )
    assert count == 2


def test_dichotomies_differ(benchmark):
    """{A→B, B→A}: tractable for optimal S-repairs, #P-hard for
    counting — the optimisation and counting dichotomies do not
    coincide."""
    fds = FDSet("A -> B; B -> A")

    def verdicts():
        optimisation = osr_succeeds(fds)
        try:
            count_s_repairs(office_table().subset(()), fds)
            counting = True
        except NotChainError:
            counting = False
        return optimisation, counting

    optimisation, counting = benchmark(verdicts)
    print_table(
        "E16 — optimisation vs counting dichotomy on {A→B, B→A}",
        ("problem", "tractable"),
        [("optimal S-repair (this paper)", optimisation), ("#S-repairs ([26])", counting)],
    )
    assert optimisation is True
    assert counting is False


def test_counting_scales_polynomially(benchmark):
    table = planted_violations_table(
        ("A", "B", "C"), CHAIN, 3000, corruption=0.1, domain=6, seed=1
    )
    count = benchmark(count_s_repairs, table, CHAIN)
    assert count >= 1
