"""E15 — Lemmas A.14–A.18: fact-wise reductions, end to end.

Paper claims reproduced: for stuck FD sets of every class, the fact-wise
reduction from the matching Table 1 source is injective, preserves pair
(in)consistency, and is *strict* — optimal S-repair costs transfer
exactly (Lemma 3.7).  The attribute-erasure reduction (Lemma A.18) lifts
costs through Algorithm 2's simplifications.
"""

import itertools

import pytest

from repro.core.dichotomy import classify
from repro.core.exact import exact_s_repair
from repro.core.fd import FDSet
from repro.core.table import Table
from repro.core.violations import satisfies
from repro.reductions.factwise import erasure_reduction, reduction_for_witness

from conftest import print_table

STUCK = {
    "class 1": FDSet("A -> B; C -> D"),
    "class 2": FDSet("A -> C D; B -> C E"),
    "class 3": FDSet("A -> B C; B -> D"),
    "class 4": FDSet("A B -> C; A C -> B; B C -> A"),
    "class 5": FDSet("A B -> C; C -> A D"),
}


def test_all_classes_strict(benchmark):
    def run_all():
        out = []
        for label, fds in STUCK.items():
            result = classify(fds)
            schema = tuple(sorted(result.residual.attributes))
            red = reduction_for_witness(schema, result.residual, result.witness)
            rows = list(itertools.product(range(2), repeat=3))
            src = Table.from_rows(("A", "B", "C"), rows)
            tgt = red.map_table(src)
            src_cost = src.dist_sub(exact_s_repair(src, red.source_fds))
            tgt_cost = tgt.dist_sub(exact_s_repair(tgt, red.target_fds))
            out.append((label, red, src_cost, tgt_cost))
        return out

    results = benchmark(run_all)
    rows = []
    for label, red, src_cost, tgt_cost in results:
        rows.append((label, red.source_fds, f"{src_cost:g}", f"{tgt_cost:g}"))
        assert src_cost == pytest.approx(tgt_cost)
    print_table(
        "E15 / Lemmas A.14–A.17 — strict cost transfer (8-tuple tables)",
        ("class", "source Δ", "source opt", "target opt"),
        rows,
    )


def test_erasure_lifts_costs(benchmark):
    """Lemma A.18 on the common-lhs wrapper {KA→B, KB→C}."""
    fds = FDSet("K A -> B; K B -> C")
    red = erasure_reduction(tuple("KABC"), fds, frozenset("K"))

    def run():
        rows = [("k",) + t for t in itertools.product(range(2), repeat=3)]
        src = Table.from_rows(tuple("KABC"), rows)
        tgt = red.map_table(src)
        src_cost = src.dist_sub(exact_s_repair(src, red.source_fds))
        tgt_cost = tgt.dist_sub(exact_s_repair(tgt, red.target_fds))
        return src_cost, tgt_cost

    src_cost, tgt_cost = benchmark(run)
    print_table(
        "E15 / Lemma A.18 — erasure reduction cost transfer",
        ("source Δ−K opt", "target Δ opt"),
        [(f"{src_cost:g}", f"{tgt_cost:g}")],
    )
    assert src_cost == pytest.approx(tgt_cost)
