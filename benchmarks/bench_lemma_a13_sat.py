"""E13 — Lemma A.13: MAX-non-mixed-SAT ↔ S-repairs under ``Δ_{AB→C→B}``.

Paper claims reproduced: the translation is exact — the maximum number of
simultaneously satisfiable clauses equals the maximum consistent-subset
size of the constructed table, and an optimal assignment is extractable
from an optimal repair (both directions of the strict reduction).
"""

import pytest

from repro.core.exact import exact_s_repair
from repro.core.violations import satisfies
from repro.datagen.cnf import random_non_mixed_formula
from repro.reductions.sat import (
    SAT_FDS,
    assignment_to_subset,
    brute_force_max_sat,
    formula_to_table,
    subset_to_assignment,
)

from conftest import print_table


def test_lemma_a13_round_trip(benchmark):
    formulas = [
        random_non_mixed_formula(5, 9, 2, seed=seed) for seed in range(6)
    ]

    def solve_all():
        out = []
        for f in formulas:
            table = formula_to_table(f)
            repair = exact_s_repair(table, SAT_FDS)
            out.append((f, table, repair))
        return out

    results = benchmark(solve_all)
    rows = []
    for f, table, repair in results:
        _tau, best_sat = brute_force_max_sat(f)
        assert satisfies(repair, SAT_FDS)
        assert len(repair) == best_sat
        tau = subset_to_assignment(repair)
        achieved = f.satisfied_count(tau)
        assert achieved >= len(repair)
        witness = assignment_to_subset(f, table, tau)
        assert satisfies(witness, SAT_FDS)
        rows.append(
            (len(f.clauses), len(table), best_sat, len(repair), achieved)
        )
    print_table(
        "E13 / Lemma A.13 — MAX-non-mixed-SAT ↔ S-repair",
        ("clauses", "|T|", "max-sat opt", "kept tuples", "extracted τ sat"),
        rows,
    )


def test_complement_strictness(benchmark):
    """The complement identity: minimum deletions = tuples − max-sat
    (the quantity APX-hardness talks about, Lemma A.12)."""
    f = random_non_mixed_formula(6, 12, 2, seed=77)
    table = formula_to_table(f)

    repair = benchmark(exact_s_repair, table, SAT_FDS)
    _tau, best_sat = brute_force_max_sat(f)
    assert table.dist_sub(repair) == len(table) - best_sat
