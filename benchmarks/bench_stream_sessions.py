"""PR-3 — streaming repair sessions vs from-scratch cleaning.

A long-lived repair service sees a tuple stream, not a batch: each append
usually touches one conflict component (often none).  The
:class:`repro.session.RepairSession` exploits that — incremental
``ConflictIndex.insert``, component reuse, and a content-addressed
per-component repair cache — so a single-tuple append re-solves only the
component it lands in.

Acceptance gate (ISSUE 3): on the clustered 10k workload, incremental
re-repair after single-tuple appends must be **≥ 5×** faster than
running ``pipeline.clean`` from scratch per append, with byte-identical
results.  ISSUE 5 adds the incremental-CSR gate: patching the kernel
view per delta must beat invalidating and rebuilding it per delta (the
other way to keep the array fast paths live mid-stream).  Results land
in ``BENCH_stream.json``.
"""

import time

from repro.core.fd import FDSet
from repro.core.table import Table
from repro.datagen.synthetic import clustered_conflicts_table
from repro.io.tables import table_to_csv
from repro.pipeline import clean
from repro.session import RepairSession

from conftest import print_table, record_bench

SCHEMA = ("A", "B", "C")

#: The PR-2 clustered acceptance workload: 120 conflict clusters of 25
#: tuples in a 10k table, marriage Δ (tractable, so every component is
#: solved optimally and byte-identity covers the OptSRepair path).
MARRIAGE = FDSet("A -> B; B -> A; B -> C")

APPENDS = 12  # single-tuple appends per run; alternating dirty/clean


def _workload():
    return clustered_conflicts_table(
        SCHEMA, 10_000, clusters=120, cluster_size=25,
        filler_group_size=100, seed=7,
    )


def _append_row(i: int):
    """Even steps collide into an existing cluster; odd steps add a
    conflict-free tuple — the common case a streaming service sees."""
    if i % 2 == 0:
        cluster = (i * 7) % 120
        return (f"a{cluster}", f"b{cluster}.new{i}", f"x{cluster}")
    return (f"fresh{i}", f"g{i}", f"y{i}")


def test_stream_single_tuple_appends_5x(benchmark):
    """The ISSUE-3 gate: ≥ 5× on append-heavy streaming, results
    byte-identical to from-scratch cleaning at every step."""
    table = _workload()
    session = RepairSession(table, MARRIAGE)
    session.repair()  # the session's one-time warm-up solve

    # Warm-up (untimed) on both arms before the timed loop, so neither
    # side pays first-touch costs (imports, allocator warm-up) inside
    # the gate.  The gate itself is a ratio of sums over APPENDS
    # appends — 30 samples per arm — which is what keeps it stable
    # where a single-shot median would flake.
    ids_before = set(session.table.ids())
    session.append([_append_row(10**6)])
    fresh_warm = Table(SCHEMA, session.table.rows(), session.table.weights())
    clean(fresh_warm, MARRIAGE)
    session.delete(list(set(session.table.ids()) - ids_before))
    # Drop garbage left behind by earlier bench files before timing: a
    # large stale heap makes gen-2 collections land inside the timed
    # appends, and the fine-grained incremental arm absorbs them far
    # worse than the coarse scratch arm does.
    import gc

    gc.collect()

    incremental_s = 0.0
    scratch_s = 0.0
    rows_so_far = []
    for i in range(APPENDS):
        row = _append_row(i)
        rows_so_far.append(row)
        start = time.perf_counter()
        result = session.append([row])
        incremental_s += time.perf_counter() - start

        # From-scratch baseline: a fresh table object (cold caches), as a
        # batch service re-invoked per append would see it.  Construction
        # happens outside the timer on both sides.
        fresh = Table(SCHEMA, session.table.rows(), session.table.weights())
        start = time.perf_counter()
        expected = clean(fresh, MARRIAGE)
        scratch_s += time.perf_counter() - start

        assert result.cleaned == expected.cleaned
        assert result.distance == expected.distance
        assert result.method == expected.method
        assert result.report == expected.report
    assert table_to_csv(result.cleaned) == table_to_csv(expected.cleaned)

    benchmark.pedantic(
        session.append, args=([("a0", "b0.bench", "x0")],),
        rounds=1, iterations=1,
    )

    speedup = scratch_s / incremental_s
    per_append_inc = incremental_s / APPENDS
    per_append_scratch = scratch_s / APPENDS
    print_table(
        "PR-3 — streaming session vs from-scratch (clustered 10k, marriage Δ)",
        ("path", "per append", "total"),
        [
            ("session (incremental)", f"{per_append_inc * 1e3:.1f} ms",
             f"{incremental_s * 1e3:.0f} ms"),
            ("from-scratch clean", f"{per_append_scratch * 1e3:.1f} ms",
             f"{scratch_s * 1e3:.0f} ms"),
            ("speedup", f"{speedup:.1f}×", ""),
        ],
    )
    record_bench(
        "BENCH_stream.json",
        "stream-append-clustered-10k",
        per_append_inc,
        scratch_per_append_s=round(per_append_scratch, 6),
        speedup=round(speedup, 2),
        appends=APPENDS,
        cache_hits=session.stats.cache_hits,
        cache_misses=session.stats.cache_misses,
    )
    # The acceptance gate, with the measured margin well above it.
    assert speedup >= 5.0


def test_stream_consistent_appends_solve_nothing(benchmark):
    """A conflict-free append must be served entirely from the component
    cache — zero solver invocations, every component a hit."""
    table = _workload()
    session = RepairSession(table, MARRIAGE)
    session.repair()
    misses_before = session.stats.cache_misses

    start = time.perf_counter()
    for i in range(10):
        session.append([(f"quiet{i}", f"q{i}", f"z{i}")])
    elapsed = time.perf_counter() - start

    assert session.stats.cache_misses == misses_before
    assert session.stats.cache_hits >= 10 * 120
    benchmark.pedantic(
        session.append, args=([("quiet-b", "qb", "zb")],),
        rounds=1, iterations=1,
    )
    record_bench(
        "BENCH_stream.json",
        "stream-consistent-append-10k",
        elapsed / 10,
        appends=10,
    )


def test_stream_incremental_csr_vs_rebuild(benchmark):
    """ISSUE-5 gate: keeping the kernel view live by *patching* it per
    delta (tombstones + overflow adjacency) must beat the alternative
    way of keeping the array fast paths — invalidating the snapshot and
    rebuilding the CSR arrays per delta — with identical results, and
    the session must never fall back to a dropped view."""
    incremental = RepairSession(_workload(), MARRIAGE)
    incremental.repair()
    rebuild = RepairSession(_workload(), MARRIAGE)
    rebuild.repair()
    import gc

    gc.collect()

    incremental_s = 0.0
    rebuild_s = 0.0
    for i in range(APPENDS):
        row = _append_row(i)

        start = time.perf_counter()
        result_inc = incremental.append([row])
        incremental_s += time.perf_counter() - start
        kern = incremental.index._kernel
        assert kern is not None  # patched or compacted, never dropped
        assert kern.live_count == len(incremental.index)

        start = time.perf_counter()
        rebuild.append([row], repair=False)
        rebuild.index._kernel = None          # snapshot-invalidate…
        rebuild.index.refresh_kernel()        # …then rebuild to keep arrays
        result_reb = rebuild.repair()
        rebuild_s += time.perf_counter() - start

        assert result_inc.cleaned == result_reb.cleaned
        assert result_inc.report == result_reb.report

    benchmark.pedantic(
        incremental.append, args=([("a1", "b1.bench", "x1")],),
        rounds=1, iterations=1,
    )
    speedup = rebuild_s / incremental_s
    print_table(
        "ISSUE-5 — incremental CSR (patch per delta) vs snapshot rebuild "
        "(clustered 10k, marriage Δ)",
        ("path", "per append", "total"),
        [
            ("patch (tombstones+overflow)",
             f"{incremental_s / APPENDS * 1e3:.1f} ms",
             f"{incremental_s * 1e3:.0f} ms"),
            ("invalidate + rebuild CSR",
             f"{rebuild_s / APPENDS * 1e3:.1f} ms",
             f"{rebuild_s * 1e3:.0f} ms"),
            ("speedup", f"{speedup:.1f}×", ""),
        ],
    )
    record_bench(
        "BENCH_stream.json",
        "stream-incremental-csr-10k",
        incremental_s / APPENDS,
        rebuild_per_append_s=round(rebuild_s / APPENDS, 6),
        speedup=round(speedup, 2),
        appends=APPENDS,
    )
    assert speedup >= 1.4


def test_stream_deletes_match_scratch(benchmark):
    """Deletes ride the same incremental path: remove is O(degree + |Δ|)
    and untouched components stay cached."""
    table = _workload()
    session = RepairSession(table, MARRIAGE)
    session.repair()

    victims = [tid for tid in list(table.ids())[:2000] if tid % 97 == 0][:8]
    incremental_s = 0.0
    for tid in victims:
        start = time.perf_counter()
        result = session.delete([tid])
        incremental_s += time.perf_counter() - start
    fresh = Table(SCHEMA, session.table.rows(), session.table.weights())
    expected = clean(fresh, MARRIAGE)
    assert result.cleaned == expected.cleaned
    assert result.method == expected.method
    assert result.report == expected.report

    benchmark.pedantic(session.repair, rounds=1, iterations=1)
    record_bench(
        "BENCH_stream.json",
        "stream-delete-clustered-10k",
        incremental_s / len(victims),
        deletes=len(victims),
    )
