"""PR-9 — the price of self-healing, and what crash-safe state buys.

Two gates for the fault-tolerance layer:

1. **Supervision overhead ≤ 5 % fault-free.**  The supervisor's costs
   (parent-side mirror maintenance on every broadcast, per-solve
   in-flight bookkeeping, the collector's liveness sweep) are paid on
   every request, faults or not.  A/B the identical workload through
   one shared :class:`~repro.exec.PersistentWorkerPool` with
   ``supervise=True`` vs ``supervise=False`` (the PR-6 fail-fast
   semantics): best-of-N supervised time must stay within 5 % of
   unsupervised, plus a small absolute epsilon so a sub-second arm is
   not gated on scheduler jitter.

2. **Warm recovery ≥ 2× vs cold replay on an 8-tenant daemon.**  A
   crash-safe daemon's snapshot persists the *solution cache* alongside
   the sessions, so restarting from a snapshot costs session restores
   plus cache hits — while a stateless daemon's crash forces every
   client to resubmit its whole workload and re-solve it.  Recovery
   (restart + one repair per tenant) must beat the cold replay by ≥ 2×,
   with per-tenant results byte-identical across the original run, the
   recovered daemon, and the cold replay.

Results land in ``BENCH_faults.json``; the recovery ``speedup`` rides
the CI >30 % regression gate.
"""

import time

import pytest

from repro.core.fd import FDSet
from repro.core.table import Table
from repro.exec import PersistentWorkerPool
from repro.io.tables import table_to_csv
from repro.server import ServerConfig, SessionManager
from repro.session import RepairSession

from conftest import measure_best, print_table, record_bench

SCHEMA = ("A", "B", "C")

#: Hard Δ: components above the conflict clusters solve via exact
#: branch & bound — real per-component work, so both gates measure the
#: fault-tolerance machinery against realistic solving, not bookkeeping.
HARD = FDSet("A -> B; B -> C")

CLUSTERS = 6
CLUSTER_SIZE = 40
BATCHES = 4

OVERHEAD_SESSIONS = 2   # sessions per timed pass of the overhead A/B
RECOVERY_TENANTS = 8    # the warm daemon the recovery gate restarts


def _cluster_batches():
    """CLUSTERS independent conflict clusters (distinct value spaces →
    independent components) delivered over BATCHES appends — the same
    workload shape as the daemon throughput bench, so numbers are
    comparable across BENCH files."""
    import random

    rows = []
    for c in range(CLUSTERS):
        rng = random.Random(100 + c)
        for _ in range(CLUSTER_SIZE):
            rows.append((
                f"a{c}.{rng.randrange(4)}",
                f"b{c}.{rng.randrange(8)}",
                f"x{c}.{rng.randrange(3)}",
            ))
    per = (len(rows) + BATCHES - 1) // BATCHES
    return [rows[i : i + per] for i in range(0, len(rows), per)]


def test_supervision_overhead_under_5_percent(benchmark):
    """Fault-free A/B: the self-healing machinery may cost at most 5 %
    over the PR-6 fail-fast pool on the identical workload."""
    batches = _cluster_batches()

    def _drive(pool):
        """OVERHEAD_SESSIONS sessions over the shared pool: attach,
        broadcast deltas, repair (private caches → every component
        solves on the pool), detach."""
        outputs = []
        for _ in range(OVERHEAD_SESSIONS):
            session = RepairSession(Table(SCHEMA, {}), HARD, pool=pool)
            for batch in batches:
                session.append(batch, repair=False)
            result = session.repair()
            outputs.append(table_to_csv(result.cleaned))
            session.close()
        return outputs

    def _arm(supervise):
        pool = PersistentWorkerPool(2, supervise=supervise)
        if not pool.start():
            pool.close()
            pytest.skip("platform cannot start worker processes")
        try:
            # Pool spawn stays untimed — it is identical across arms;
            # the arms differ only in per-request supervision costs.
            outputs, best_s, runs = measure_best(
                lambda: _drive(pool), repeats=3, warmup=1
            )
            assert pool.supervision_stats()["worker_deaths"] == 0
        finally:
            pool.close()
        return outputs, best_s, runs

    plain_out, plain_s, plain_runs = _arm(supervise=False)
    sup_out, sup_s, sup_runs = _arm(supervise=True)

    # Supervision must never change answers, only survive faults.
    assert sup_out == plain_out

    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1
    )

    overhead = sup_s / plain_s - 1.0
    print_table(
        "PR-9 — supervision overhead, fault-free "
        f"({OVERHEAD_SESSIONS} sessions × {CLUSTERS} components, hard Δ)",
        ("arm", "best", "runs"),
        [
            ("fail-fast pool (supervise=False)", f"{plain_s * 1e3:.0f} ms",
             " ".join(f"{t * 1e3:.0f}" for t in plain_runs)),
            ("supervised pool (default)", f"{sup_s * 1e3:.0f} ms",
             " ".join(f"{t * 1e3:.0f}" for t in sup_runs)),
            ("overhead", f"{overhead * 100:+.1f} %", "gate ≤ +5 %"),
        ],
    )
    record_bench(
        "BENCH_faults.json",
        "supervision-overhead-fault-free",
        sup_s,
        runs_s=sup_runs,
        unsupervised_s=round(plain_s, 6),
        overhead_pct=round(overhead * 100, 2),
    )
    # The gate: ≤ 5 % relative, with a 50 ms absolute epsilon so a
    # sub-second arm is not failed on scheduler jitter alone.
    assert sup_s <= plain_s * 1.05 + 0.05


def test_recovery_beats_cold_replay_2x(benchmark):
    """The crash-safe state gate: restarting a warm 8-tenant daemon
    from its snapshot (sessions + solution cache) must be ≥ 2× faster
    than the stateless alternative — every client resubmitting and the
    daemon re-solving the whole workload."""
    import tempfile

    batches = _cluster_batches()

    def _drive_workload(manager):
        """The 8 tenants' full client scripts: open, append the
        batches, repair.  What clients replay against a stateless
        daemon after a crash."""
        outputs = []
        for t in range(RECOVERY_TENANTS):
            tenant = f"tenant-{t}"
            manager.open(
                tenant, "s",
                {"schema": list(SCHEMA), "fds": "A -> B; B -> C"},
            )
            entry = manager.entry(tenant, "s")
            for batch in batches:
                manager.run_op(
                    entry, "append",
                    {"rows": [list(r) for r in batch], "repair": False},
                )
            manager.run_op(entry, "repair", {})
            outputs.append(table_to_csv(entry.live.last_result.cleaned))
        return outputs

    with tempfile.TemporaryDirectory() as warm_dir, \
            tempfile.TemporaryDirectory() as cold_dir:
        # Untimed setup: the warm daemon serves the workload, then
        # shuts down cleanly — the final compaction snapshots the 8
        # sessions *and* the shared solution cache.
        manager = SessionManager(ServerConfig(workers=0, state_dir=warm_dir))
        original = _drive_workload(manager)
        manager.shutdown()

        # Warm arm: restart from the snapshot + one repair per tenant.
        start = time.perf_counter()
        recovered = SessionManager(
            ServerConfig(workers=0, state_dir=warm_dir)
        )
        warm_out = []
        for t in range(RECOVERY_TENANTS):
            entry = recovered.entry(f"tenant-{t}", "s")
            recovered.run_op(entry, "repair", {})
            warm_out.append(table_to_csv(entry.live.last_result.cleaned))
        warm_s = time.perf_counter() - start
        stats = recovered.stats()
        recovered.shutdown()

        # Cold arm: a fresh stateless-equivalent daemon, every client
        # replaying its whole script.
        start = time.perf_counter()
        cold = SessionManager(ServerConfig(workers=0, state_dir=cold_dir))
        cold_out = _drive_workload(cold)
        cold_s = time.perf_counter() - start
        cold.shutdown()

    # Exactness first: recovery and cold replay must both reproduce the
    # original run byte-for-byte.
    assert warm_out == original
    assert cold_out == original
    # The mechanism: all sessions came back from the snapshot with no
    # journal tail to replay, and the recovered repairs were cache hits.
    assert stats["recovered_sessions"] == RECOVERY_TENANTS
    assert stats["replayed_ops"] == 0
    assert stats["cache_hits"] >= RECOVERY_TENANTS * CLUSTERS

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    speedup = cold_s / warm_s
    print_table(
        "PR-9 — snapshot recovery vs cold replay "
        f"({RECOVERY_TENANTS} tenants × {CLUSTERS} components, hard Δ)",
        ("arm", "total", "per tenant"),
        [
            ("cold replay (stateless crash)", f"{cold_s * 1e3:.0f} ms",
             f"{cold_s / RECOVERY_TENANTS * 1e3:.1f} ms"),
            ("snapshot recovery + repair", f"{warm_s * 1e3:.0f} ms",
             f"{warm_s / RECOVERY_TENANTS * 1e3:.1f} ms"),
            ("speedup", f"{speedup:.1f}×", "gate ≥ 2×"),
        ],
    )
    record_bench(
        "BENCH_faults.json",
        "recovery-vs-cold-replay-8x",
        warm_s,
        cold_replay_s=round(cold_s, 6),
        speedup=round(speedup, 2),
        tenants=RECOVERY_TENANTS,
        recovered_sessions=stats["recovered_sessions"],
        cache_hits=stats["cache_hits"],
    )
    # The acceptance gate.
    assert speedup >= 2.0
