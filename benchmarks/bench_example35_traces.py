"""E2 — Example 3.5: dichotomy classification walkthroughs.

Paper claims reproduced: the exact simplification chains (common lhs ⇛
consensus ⇛ …) for the running Δ, ``Δ_{A↔B→C}``, and the ssn Δ1; failure
verdicts for ``{A→B, B→C}`` and ``{A→B, C→D}``.  ``OSRSucceeds`` runs in
polynomial time in |Δ| (Theorem 3.4), which the timing confirms at
microsecond scale.
"""

import pytest

from repro.core.dichotomy import classify, osr_succeeds
from repro.core.fd import FDSet
from repro.datagen.office import office_fds

from conftest import print_table

CASES = {
    "running Δ (Office)": (office_fds(), True),
    "Δ_{A↔B→C}": (FDSet("A -> B; B -> A; B -> C"), True),
    "Δ1 (ssn)": (
        FDSet(
            "ssn -> first; ssn -> last; first last -> ssn; ssn -> address; "
            "ssn office -> phone; ssn office -> fax"
        ),
        True,
    ),
    "{A→B, B→C}": (FDSet("A -> B; B -> C"), False),
    "{A→B, C→D}": (FDSet("A -> B; C -> D"), False),
}


def test_example35_verdicts(benchmark):
    def classify_all():
        return {name: classify(fds) for name, (fds, _want) in CASES.items()}

    results = benchmark(classify_all)
    rows = []
    for name, (fds, want) in CASES.items():
        result = results[name]
        assert result.tractable == want, name
        chain = " ⇛ ".join(s.kind for s in result.steps) or "stuck"
        rows.append((name, result.complexity, "PTIME" if want else "APX-complete", chain))
    print_table(
        "E2 / Example 3.5 — dichotomy verdicts",
        ("Δ", "measured", "paper", "simplification chain"),
        rows,
    )
    for name in ("running Δ (Office)",):
        print(f"\ntrace for {name}:")
        for line in results[name].trace_lines():
            print(f"  {line}")


def test_example35_running_trace_is_exact(benchmark):
    """The running example's chain must match the paper symbol for
    symbol: common lhs(facility) ⇛ consensus(city) ⇛ common lhs(room) ⇛
    consensus(floor)."""
    result = benchmark(classify, office_fds())
    got = [(s.kind, tuple(sorted(s.removed))) for s in result.steps]
    assert got == [
        ("common lhs", ("facility",)),
        ("consensus", ("city",)),
        ("common lhs", ("room",)),
        ("consensus", ("floor",)),
    ]
