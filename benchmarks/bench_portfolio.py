"""ISSUE-7 gates — difficulty-driven solver scheduling vs the size rule.

The workload is :func:`repro.datagen.synthetic.portfolio_mix_table`, the
**easy-large / hard-small** family where difficulty ordering beats size
ordering: six 220-tuple path components (uniform weights, so the exact
solver's pendant rule collapses them without branching — milliseconds,
but *above* the historical 128-tuple exact threshold) mixed with four
100-tuple dense tangles (heterogeneous weights, genuinely exponential —
but *below* the threshold).  The legacy per-component rule approximates
every path at ratio 2 and burns its full budget branching on every
tangle; the global scheduler ranks by predicted difficulty, solves the
paths exactly for ~free, and downgrades the tangles up front.

Gates, all measured best-of-5 after a warm-up run
(:func:`conftest.measure_best`):

* **End-to-end clean** under the *same total exact allowance*
  (``exact_budget_s = hard_components × per-component budget``): the
  scheduled arm must be ≥ 1.5× faster *and* produce a repair no more
  expensive than the baseline's.  The recorded gate ``speedup`` is
  capped at 4.0×: the baseline arm's cost is dominated by deliberately
  burned wall-clock budget (machine-independent) while the scheduled
  arm is pure compute (machine-dependent), so the raw ratio — ~30× on a
  fast box — would make the CI regression floor (0.7× the committed
  value) spuriously sensitive to CI hardware.  ``speedup_raw`` records
  the uncapped measurement for the trajectory.
* **LP-tightened brackets**: on the same family, ``assess`` must report
  at least one component whose bracket came from the LP relaxation with
  a lower bound strictly above the matching bound, and the report-level
  lower bound must beat the matching-only sum.
* **Identity**: under the global budget the scheduled repair is
  byte-identical serial vs ``parallel=4`` and kernel vs ``--no-kernel``
  (the plan is computed once up front and shipped with the tasks).

Results land in ``BENCH_portfolio.json``; the committed baseline doubles
as the CI regression reference (the workflow fails on a > 30% drop of
any gated ``speedup``).
"""

from repro.core import kernel
from repro.core.decompose import decompose
from repro.core.fd import FDSet
from repro.datagen.synthetic import portfolio_mix_table
from repro.io.tables import table_to_csv
from repro.pipeline import assess, clean

from conftest import measure_best, print_table, record_bench

OVERLAY = FDSet("A -> B; B -> C")
PER_COMPONENT_BUDGET_S = 0.2
HARD_COMPONENTS = 4
GLOBAL_BUDGET_S = HARD_COMPONENTS * PER_COMPONENT_BUDGET_S
SPEEDUP_CAP = 4.0


def _mix_table(seed=11):
    return portfolio_mix_table(
        ("A", "B", "C"), hard_components=HARD_COMPONENTS, seed=seed
    )


def test_scheduled_clean_beats_per_component_budget(benchmark):
    """Gate 1: ≥ 1.5× end-to-end clean under the same total exact
    allowance, with a repair at least as cheap."""
    table = _mix_table()

    def run_baseline():
        return clean(
            table, OVERLAY, per_component_budget_s=PER_COMPONENT_BUDGET_S
        )

    def run_scheduled():
        return clean(table, OVERLAY, exact_budget_s=GLOBAL_BUDGET_S)

    baseline, baseline_s, _ = measure_best(run_baseline)
    scheduled, scheduled_s, scheduled_runs = measure_best(run_scheduled)
    benchmark.pedantic(run_scheduled, rounds=1, iterations=1)

    speedup_raw = baseline_s / scheduled_s
    speedup = min(speedup_raw, SPEEDUP_CAP)
    assert speedup_raw >= 1.5, (
        f"global scheduling only {speedup_raw:.2f}× over the "
        f"per-component baseline (need ≥ 1.5×)"
    )
    # Same exact allowance, strictly better spent: the paths the size
    # rule approximated are now solved exactly, so the repair can only
    # get cheaper — and the tangles' budget burn is gone.
    assert scheduled.distance <= baseline.distance
    assert scheduled.report.lower_bound >= baseline.report.lower_bound

    print_table(
        "ISSUE-7 — end-to-end clean, global difficulty scheduling vs "
        "per-component budgets (portfolio mix)",
        ("arm", "best of 5", "distance", "lower bound"),
        [
            ("per-component budget", f"{baseline_s * 1e3:.1f} ms",
             f"{baseline.distance:.1f}",
             f"{baseline.report.lower_bound:.1f}"),
            ("global scheduler", f"{scheduled_s * 1e3:.1f} ms",
             f"{scheduled.distance:.1f}",
             f"{scheduled.report.lower_bound:.1f}"),
            ("speedup", f"{speedup_raw:.1f}× (gated at {speedup:.1f}×)",
             "", ""),
        ],
    )
    record_bench(
        "BENCH_portfolio.json",
        "clean-global-vs-per-component",
        scheduled_s,
        runs_s=scheduled_runs,
        baseline_s=round(baseline_s, 6),
        speedup=round(speedup, 2),
        speedup_raw=round(speedup_raw, 2),
        scheduled_distance=scheduled.distance,
        baseline_distance=baseline.distance,
    )


def test_assess_brackets_lp_tighter_than_matching():
    """Gate 2: the LP relaxation visibly tightens the assess brackets on
    the downgraded tangles."""
    table = _mix_table()
    components = decompose(table, OVERLAY).components
    report = assess(
        table, OVERLAY, exact_budget_s=GLOBAL_BUDGET_S, detailed=True
    )
    details = report.component_details
    assert details is not None and len(details) == len(components)

    lp_tightened = [d for d in details if d.bracket_source == "lp"]
    assert lp_tightened, "no component bracket came from the LP relaxation"
    for detail in lp_tightened:
        matching = components[detail.ordinal].index.matching_lower_bound()
        assert detail.lower_bound > matching

    matching_total = sum(
        component.index.matching_lower_bound() for component in components
    )
    assert report.lower_bound > matching_total
    tightening = report.lower_bound / matching_total

    print_table(
        "ISSUE-7 — assess bracket tightening, LP vs matching "
        "(portfolio mix)",
        ("bound", "total", "components"),
        [
            ("matching only", f"{matching_total:.1f}", len(components)),
            ("scheduled brackets", f"{report.lower_bound:.1f}",
             f"{len(lp_tightened)} via LP"),
            ("tightening", f"{tightening:.3f}×", ""),
        ],
    )
    record_bench(
        "BENCH_portfolio.json",
        "assess-lp-bracket-tightening",
        0.0,
        lower_bound=round(report.lower_bound, 6),
        matching_total=round(matching_total, 6),
        tightening=round(tightening, 4),
        lp_components=len(lp_tightened),
    )


def test_scheduled_repair_identical_serial_parallel_kernel():
    """Gate 3: the globally scheduled repair is byte-identical however
    the components are dispatched and whichever substrate solves them."""
    serial = clean(_mix_table(), OVERLAY, exact_budget_s=GLOBAL_BUDGET_S)
    parallel = clean(
        _mix_table(), OVERLAY, exact_budget_s=GLOBAL_BUDGET_S, parallel=4
    )
    assert serial.distance == parallel.distance
    assert table_to_csv(serial.cleaned) == table_to_csv(parallel.cleaned)

    with kernel.disabled():
        reference = clean(
            _mix_table(), OVERLAY, exact_budget_s=GLOBAL_BUDGET_S
        )
    assert serial.distance == reference.distance
    assert table_to_csv(serial.cleaned) == table_to_csv(reference.cleaned)
