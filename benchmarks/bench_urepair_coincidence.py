"""E9 — Corollaries 4.6/4.8 and Proposition 4.9: when U equals S.

Paper claims reproduced: for common-lhs FD sets passing ``OSRSucceeds``,
for chain FD sets, and for ``{A→B, B→A}``, the optimal U-repair distance
*equals* the optimal S-repair distance — measured instance by instance.
``Δ2 = {state city→zip, state zip→country}`` (Example 4.7) fails the
dichotomy test and is correctly reported APX-complete.
"""

import pytest

from repro.core.dichotomy import osr_succeeds
from repro.core.fd import FDSet
from repro.core.srepair import opt_s_repair
from repro.core.urepair import u_repair
from repro.core.violations import satisfies
from repro.datagen.synthetic import planted_violations_table

from conftest import print_table

COINCIDENCE_FAMILIES = {
    "running Δ (common lhs)": FDSet("facility -> city; facility room -> floor"),
    "Δ1 passports (Ex 4.7)": FDSet("id country -> passport; id passport -> country"),
    "chain {A→B, AB→C}": FDSet("A -> B; A B -> C"),
    "two-cycle {A→B, B→A}": FDSet("A -> B; B -> A"),
}


@pytest.mark.parametrize("family", sorted(COINCIDENCE_FAMILIES))
def test_dist_upd_equals_dist_sub(benchmark, family):
    fds = COINCIDENCE_FAMILIES[family]
    schema = tuple(sorted(fds.attributes))
    tables = [
        planted_violations_table(schema, fds, 30, corruption=0.15, domain=3, seed=s)
        for s in range(5)
    ]

    results = benchmark(lambda: [u_repair(t, fds) for t in tables])

    rows = []
    for t, res in zip(tables, results):
        assert res.optimal
        assert satisfies(res.update, fds)
        s_dist = t.dist_sub(opt_s_repair(fds, t))
        rows.append((len(t), f"{s_dist:g}", f"{res.distance:g}"))
        assert res.distance == pytest.approx(s_dist)
    print_table(
        f"E9 — dist_upd(U*) = dist_sub(S*) for {family}",
        ("|T|", "dist_sub(S*)", "dist_upd(U*)"),
        rows,
    )


def test_example_47_negative_case(benchmark):
    """Δ2 of Example 4.7 fails OSRSucceeds → APX-complete for both
    repair flavours."""
    fds = FDSet("state city -> zip; state zip -> country")
    verdict = benchmark(osr_succeeds, fds)
    assert verdict is False
