"""E4 — Figure 2 + Example 3.8: the five classes of stuck FD sets.

Paper claims reproduced: Δ1–Δ5 of Example 3.8 land in classes 1–5; each
class's fact-wise reduction (Lemmas A.14–A.17) is injective, preserves
pair consistency, and preserves the optimal S-repair cost (strictness,
Lemma 3.7).
"""

import itertools

import pytest

from repro.core.dichotomy import classify
from repro.core.exact import exact_s_repair
from repro.core.fd import FDSet
from repro.core.table import Table
from repro.core.violations import satisfies
from repro.reductions.factwise import reduction_for_witness

from conftest import print_table

EXAMPLE_38 = {
    1: FDSet("A -> B; C -> D"),
    2: FDSet("A -> C D; B -> C E"),
    3: FDSet("A -> B C; B -> D"),
    4: FDSet("A B -> C; A C -> B; B C -> A"),
    5: FDSet("A B -> C; C -> A D"),
}


def test_figure2_classification(benchmark):
    results = benchmark(
        lambda: {cid: classify(fds) for cid, fds in EXAMPLE_38.items()}
    )
    rows = []
    for cid, result in sorted(results.items()):
        witness = result.witness
        assert witness.class_id == cid
        rows.append(
            (
                f"Δ{cid} = {EXAMPLE_38[cid]}",
                witness.class_id,
                cid,
                witness.source,
            )
        )
    print_table(
        "E4 / Figure 2 — Example 3.8 class assignments",
        ("FD set", "measured class", "paper class", "reduction source"),
        rows,
    )


@pytest.mark.parametrize("cid", sorted(EXAMPLE_38))
def test_figure2_factwise_reduction_strictness(benchmark, cid):
    fds = EXAMPLE_38[cid]
    result = classify(fds)
    schema = tuple(sorted(result.residual.attributes))
    reduction = reduction_for_witness(schema, result.residual, result.witness)

    # Injectivity + pair consistency over the full 3³ tuple space.
    def verify_pairs():
        bad = 0
        for t1 in itertools.product(range(3), repeat=3):
            for t2 in itertools.product(range(3), repeat=3):
                src = Table(("A", "B", "C"), {1: t1, 2: t2})
                tgt = Table(
                    reduction.target_schema,
                    {1: reduction.map_tuple(t1), 2: reduction.map_tuple(t2)},
                )
                if satisfies(src, reduction.source_fds) != satisfies(
                    tgt, reduction.target_fds
                ):
                    bad += 1
        return bad

    assert benchmark(verify_pairs) == 0

    # Strictness: optimal S-repair cost preserved on a mixed table.
    rows = [t for t in itertools.product(range(2), repeat=3)]
    src = Table.from_rows(("A", "B", "C"), rows)
    tgt = reduction.map_table(src)
    src_cost = src.dist_sub(exact_s_repair(src, reduction.source_fds))
    tgt_cost = tgt.dist_sub(exact_s_repair(tgt, reduction.target_fds))
    assert src_cost == pytest.approx(tgt_cost)
