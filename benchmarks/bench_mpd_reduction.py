"""E5 — Theorem 3.10 + Comment 3.11: the Most Probable Database.

Paper claims reproduced:
* the reduction from MPD to optimal S-repairing is exact — the most
  probable database it returns matches brute-force enumeration;
* for FD sets passing ``OSRSucceeds`` the whole pipeline is polynomial
  (the reduction routes through ``OptSRepair``);
* Comment 3.11: ``Δ_{A↔B→C}`` is solvable in polynomial time, resolving
  the gap in Gribkoff et al.'s hardness claim.
"""

import pytest

from repro.core.fd import FDSet
from repro.core.mpd import brute_force_mpd, most_probable_database
from repro.datagen.probabilistic import random_probabilistic_table

from conftest import print_table

DELTA_A_IFF_B_TO_C = FDSet("A -> B; B -> A; B -> C")


def test_mpd_reduction_correctness(benchmark):
    fds = FDSet("A -> B")
    tables = [
        random_probabilistic_table(("A", "B"), 12, domain=2, seed=seed)
        for seed in range(6)
    ]

    def run_all():
        return [most_probable_database(t, fds) for t in tables]

    results = benchmark(run_all)
    rows = []
    for t, ours in zip(tables, results):
        reference = brute_force_mpd(t, fds)
        rows.append(
            (len(t), f"{ours.probability:.3e}", f"{reference.probability:.3e}")
        )
        assert ours.probability == pytest.approx(reference.probability)
    print_table(
        "E5 / Theorem 3.10 — MPD via S-repair vs brute force",
        ("|T|", "reduction", "brute force"),
        rows,
    )


def test_mpd_polynomial_route_scales(benchmark):
    """The reduction handles instances far beyond brute-force reach when
    Δ passes OSRSucceeds (data complexity is polynomial)."""
    fds = DELTA_A_IFF_B_TO_C
    # No certain tuples: with hundreds of tuples over a small domain the
    # certain tuples would almost surely be jointly inconsistent, which
    # short-circuits the reduction (probability 0) — a different branch.
    table = random_probabilistic_table(
        ("A", "B", "C"), 400, domain=12, certain_fraction=0.0, seed=1
    )
    result = benchmark(most_probable_database, table, fds)
    assert "OptSRepair" in result.method
    assert result.probability > 0.0


def test_comment_311_delta_a_iff_b_is_ptime(benchmark):
    fds = DELTA_A_IFF_B_TO_C
    tables = [
        random_probabilistic_table(
            ("A", "B", "C"), 10, domain=2, certain_fraction=0.0, seed=seed
        )
        for seed in range(4)
    ]

    def run_all():
        return [most_probable_database(t, fds) for t in tables]

    results = benchmark(run_all)
    rows = []
    for t, ours in zip(tables, results):
        reference = brute_force_mpd(t, fds)
        assert ours.probability == pytest.approx(reference.probability)
        assert "OptSRepair" in ours.method
        rows.append((len(t), ours.method, f"{ours.probability:.3e}"))
    print_table(
        "E5 / Comment 3.11 — Δ_{A↔B→C} MPD in PTIME",
        ("|T|", "route", "probability"),
        rows,
    )
