"""E10 — Theorem 4.10: U-repairs under ``Δ_{A↔B→C}`` and vertex cover.

Paper claims reproduced: for the reduction table of a graph G,

* the optimal U-repair distance equals ``2|E| + τ(G)`` (τ = minimum
  vertex cover) — verified by exhaustive branch & bound on small graphs;
* the constructive direction (cover → update of cost ``2|E| + |C|``)
  holds on larger bounded-degree graphs, the regime of the APX-hardness
  argument;
* a cover is extractable from any consistent update.

This is the experiment behind Corollary 4.11(1): ``Δ_{A↔B→C}`` is PTIME
for S-repairs yet APX-complete for U-repairs.
"""

import pytest

from repro.core.dichotomy import osr_succeeds
from repro.core.exact import exact_u_repair
from repro.datagen.graphs import bounded_degree_graph
from repro.graphs.graph import Graph
from repro.graphs.vertex_cover import exact_min_weight_vertex_cover
from repro.reductions.vc_upd import (
    DELTA_A_IFF_B_TO_C,
    cover_to_update,
    expected_optimal_cost,
    graph_to_table,
    update_to_cover,
)

from conftest import print_table

SMALL_GRAPHS = {
    "K2 (1 edge)": [("u", "v")],
    "P3 (path)": [("u", "v"), ("v", "w")],
    "star-2": [("u", "v"), ("u", "w")],
    "K3 (triangle)": [("u", "v"), ("v", "w"), ("u", "w")],
}


def test_identity_exact_small_graphs(benchmark):
    def verify_all():
        out = []
        for name, edges in SMALL_GRAPHS.items():
            g = Graph.from_edges(edges)
            table = graph_to_table(g)
            cover = set(exact_min_weight_vertex_cover(g))
            constructed = cover_to_update(table, g, cover)
            ub = table.dist_upd(constructed)
            optimum = exact_u_repair(
                table, DELTA_A_IFF_B_TO_C, upper_bound=ub + 0.5,
                node_budget=30_000_000,
            )
            out.append((name, g, len(cover), table.dist_upd(optimum)))
        return out

    results = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    rows = []
    for name, g, tau, measured in results:
        expected = expected_optimal_cost(g, tau)
        rows.append((name, g.num_edges(), tau, f"{measured:g}", expected))
        assert measured == expected
    print_table(
        "E10 / Thm 4.10 — optimal U-repair = 2|E| + τ(G) (exact)",
        ("graph", "|E|", "τ(G)", "measured U*", "2|E|+τ"),
        rows,
    )


def test_identity_construction_bounded_degree(benchmark):
    """The paper's regime: bounded-degree graphs.  The cover→update
    construction achieves exactly 2|E| + |C| and a cover is extractable
    back."""
    graphs = [bounded_degree_graph(14, 3, 1.2, seed=s) for s in range(6)]

    def construct_all():
        out = []
        for g in graphs:
            table = graph_to_table(g)
            cover = set(exact_min_weight_vertex_cover(g))
            update = cover_to_update(table, g, cover)
            out.append((g, cover, table, update))
        return out

    results = benchmark(construct_all)
    rows = []
    for g, cover, table, update in results:
        cost = table.dist_upd(update)
        rows.append((g.num_edges(), len(cover), f"{cost:g}", expected_optimal_cost(g, len(cover))))
        assert cost == expected_optimal_cost(g, len(cover))
        extracted = update_to_cover(table, g, update)
        assert g.is_vertex_cover(extracted)
    print_table(
        "E10 / Thm 4.10 — construction cost on bounded-degree graphs",
        ("|E|", "τ(G)", "construction cost", "2|E|+τ"),
        rows,
    )


def test_corollary_411_contrast(benchmark):
    """Corollary 4.11(1): S-repairs PTIME (OSRSucceeds passes) while
    U-repairs reduce from vertex cover."""
    verdict = benchmark(osr_succeeds, DELTA_A_IFF_B_TO_C)
    assert verdict is True
