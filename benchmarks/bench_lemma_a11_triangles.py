"""E14 — Lemma A.11 + Figure 5: triangle packing ↔ ``Δ_{AB↔AC↔BC}``.

Paper claims reproduced: the maximum number of edge-disjoint triangles of
a tripartite graph equals the maximum consistent-subset size of the
triangle table; the Figure 5-style gadget packs ≥ 6/13 of its triangles
(even-indexed ones are pairwise edge-disjoint).
"""

import pytest

from repro.core.exact import exact_s_repair
from repro.core.violations import satisfies
from repro.datagen.graphs import random_tripartite_graph
from repro.reductions.triangles import (
    TRIANGLE_FDS,
    amini_gadget,
    max_edge_disjoint_triangles,
    subset_to_packing,
    triangles_to_table,
)

from conftest import print_table


def test_lemma_a11_round_trip(benchmark):
    instances = []
    for seed in range(8):
        g = random_tripartite_graph(4, 0.5, seed=seed)
        triangles = g.triangles()[:22]
        if triangles:
            instances.append(triangles)

    def solve_all():
        out = []
        for triangles in instances:
            table = triangles_to_table(triangles)
            repair = exact_s_repair(table, TRIANGLE_FDS)
            out.append((triangles, table, repair))
        return out

    results = benchmark(solve_all)
    rows = []
    for triangles, table, repair in results:
        packing = max_edge_disjoint_triangles(triangles)
        assert satisfies(repair, TRIANGLE_FDS)
        assert len(repair) == len(packing)
        extracted = subset_to_packing(repair)  # raises if not edge-disjoint
        rows.append((len(triangles), len(packing), len(repair), len(extracted)))
    print_table(
        "E14 / Lemma A.11 — max packing == max consistent subset",
        ("triangles", "packing opt", "kept tuples", "extracted packing"),
        rows,
    )


def test_figure5_gadget_property(benchmark):
    """The 13-triangle gadget: ≥ 6/13 of the triangles always pack; the
    optimal packing of the chain is exactly 7 (alternating)."""
    gadget = benchmark.pedantic(
        amini_gadget,
        args=(("x0", "x1"), ("y0", "y1"), ("z0", "z1")),
        rounds=1,
        iterations=1,
    )
    assert len(gadget) == 13
    packing = max_edge_disjoint_triangles(list(gadget))
    print_table(
        "E14 / Figure 5 — gadget packing",
        ("triangles", "max packing", "even-triangle packing", "paper bound"),
        [(13, len(packing), 6, "≥ 6/13 of triangles")],
    )
    assert len(packing) == 7
    assert len(packing) >= 6  # the 6/13 property

    table = triangles_to_table(list(gadget))
    repair = exact_s_repair(table, TRIANGLE_FDS)
    assert len(repair) == 7
