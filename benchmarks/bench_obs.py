"""ISSUE-8 — telemetry overhead and trace-driven calibration gates.

The observability layer (:mod:`repro.obs`) promises to be free when
off and cheap when on.  Both claims are CI-gated here, measured
best-of-N with the arms interleaved round-robin (so load drift on a
busy CI box hits every arm alike) on the portfolio-mix clean —
the workload whose solve loop crosses every instrumented seam (index,
decompose, plan, per-component solve records, merge):

* **No-op recorder** — a clean with the shared ``NULL_RECORDER``
  explicitly attached must stay within 3% of a clean with no recorder
  argument at all.  The two arms run the identical attribute-check-only
  path, so this gate measures that the no-op guard *stays* an
  attribute check and nobody accidentally makes the default path pay
  for telemetry.
* **Tracing enabled** — a clean under a live :class:`repro.obs.Recorder`
  streaming to a JSONL sink must stay within 15% of the no-recorder
  arm: spans are per-phase (a handful per clean) and solve records
  per-component, so the trace cost is bounded by the decomposition
  width, not the table size.

The third gate closes the ROADMAP's learned-cost-model loop: a traced
clean of the same mix family must yield enough exact predicted-vs-actual
pairs that :func:`repro.obs.calibrate_trace` fits a seconds-per-unit
constant with **lower mean relative prediction error** than the
hand-calibrated ``DIFFICULTY_UNIT_COST_S``.

Results land in ``BENCH_obs.json``; the ``overhead-traced-clean``
configuration records a ``speedup`` (baseline over traced) wired into
the CI >30% regression gate.
"""

from __future__ import annotations

import os
import tempfile

from repro import obs
from repro.core.decompose import DIFFICULTY_UNIT_COST_S
from repro.core.fd import FDSet
from repro.datagen.synthetic import portfolio_mix_table
from repro.pipeline import clean

from conftest import print_table, record_bench

OVERLAY = FDSet("A -> B; B -> C")
GLOBAL_BUDGET_S = 0.8
#: Overhead ceilings, as traced-over-baseline wall ratios.
NULL_OVERHEAD_CEILING = 1.03
TRACE_OVERHEAD_CEILING = 1.15


def _mix_table(seed=11):
    return portfolio_mix_table(("A", "B", "C"), seed=seed)


def _interleaved_best(fns, rounds=9, warmup=1):
    """Best-of-*rounds* for several arms, measured **interleaved**.

    The overhead gates below compare ratios in the low single-digit
    percent range; measuring each arm's rounds back-to-back (as
    ``measure_best`` does) lets a load drift between arms masquerade as
    overhead.  Rotating through the arms each round exposes every arm
    to the same load profile, and the per-arm minimum then filters the
    spikes symmetrically.  Returns (last results, best seconds, all
    rounds) per arm.
    """
    import time

    results = [None] * len(fns)
    for _ in range(warmup):
        for i, fn in enumerate(fns):
            results[i] = fn()
    runs = [[] for _ in fns]
    for _ in range(rounds):
        for i, fn in enumerate(fns):
            start = time.perf_counter()
            results[i] = fn()
            runs[i].append(time.perf_counter() - start)
    return results, [min(r) for r in runs], runs


def test_recorder_overhead_gates(benchmark):
    """Gates 1+2: no-op recorder ≤ 3%, live JSONL tracing ≤ 15% over an
    un-recorded clean of the same workload."""
    table = _mix_table()
    trace_path = os.path.join(tempfile.mkdtemp(), "bench_obs_trace.jsonl")

    def run_plain():
        return clean(table, OVERLAY, exact_budget_s=GLOBAL_BUDGET_S)

    def run_null():
        return clean(
            table,
            OVERLAY,
            exact_budget_s=GLOBAL_BUDGET_S,
            recorder=obs.NULL_RECORDER,
        )

    def run_traced():
        # Recorder construction, sink open, and summary flush are part
        # of the measured cost — that is what `--trace` actually buys.
        with obs.Recorder(sink=obs.JsonlTraceSink(trace_path)) as recorder:
            return clean(
                table,
                OVERLAY,
                exact_budget_s=GLOBAL_BUDGET_S,
                recorder=recorder,
            )

    (plain, null, traced), bests, runs = _interleaved_best(
        [run_plain, run_null, run_traced]
    )
    plain_s, null_s, traced_s = bests
    traced_runs = runs[2]
    benchmark.pedantic(run_traced, rounds=1, iterations=1)

    # Telemetry must never change the repair, only describe it.
    assert null.distance == plain.distance
    assert traced.distance == plain.distance

    null_ratio = null_s / plain_s
    traced_ratio = traced_s / plain_s
    assert null_ratio <= NULL_OVERHEAD_CEILING, (
        f"no-op recorder costs {100 * (null_ratio - 1):.1f}% "
        f"(ceiling {100 * (NULL_OVERHEAD_CEILING - 1):.0f}%)"
    )
    assert traced_ratio <= TRACE_OVERHEAD_CEILING, (
        f"JSONL tracing costs {100 * (traced_ratio - 1):.1f}% "
        f"(ceiling {100 * (TRACE_OVERHEAD_CEILING - 1):.0f}%)"
    )

    print_table(
        "ISSUE-8 — recorder overhead on the portfolio-mix clean",
        ("arm", "best of 9 interleaved", "vs baseline"),
        [
            ("no recorder", f"{plain_s * 1e3:.1f} ms", "1.00×"),
            ("NULL_RECORDER", f"{null_s * 1e3:.1f} ms",
             f"{null_ratio:.3f}×"),
            ("traced (JSONL sink)", f"{traced_s * 1e3:.1f} ms",
             f"{traced_ratio:.3f}×"),
        ],
    )
    record_bench(
        "BENCH_obs.json",
        "overhead-traced-clean",
        traced_s,
        runs_s=traced_runs,
        baseline_s=round(plain_s, 6),
        null_s=round(null_s, 6),
        null_ratio=round(null_ratio, 4),
        traced_ratio=round(traced_ratio, 4),
        speedup=round(plain_s / traced_s, 2),
    )


def test_trace_calibration_beats_hand_constant():
    """Gate 3: fitting DIFFICULTY_UNIT_COST_S from a trace of the mix
    family reduces the mean relative prediction error below the
    hand-calibrated constant's."""
    trace_path = os.path.join(tempfile.mkdtemp(), "bench_obs_calib.jsonl")
    with obs.Recorder(sink=obs.JsonlTraceSink(trace_path)) as recorder:
        clean(
            _mix_table(),
            OVERLAY,
            exact_budget_s=GLOBAL_BUDGET_S,
            recorder=recorder,
        )
    records = obs.read_trace(trace_path)
    report = obs.calibrate_trace(records)

    assert report["pairs"] >= 3, (
        f"only {report['pairs']} exact predicted-vs-actual pairs in the "
        "trace — not enough signal to calibrate"
    )
    assert report["hand_unit_cost_s"] == DIFFICULTY_UNIT_COST_S
    assert report["mean_rel_error"] <= report["hand_mean_rel_error"], (
        f"fitted constant predicts worse than the hand one "
        f"({report['mean_rel_error']:.3f} vs "
        f"{report['hand_mean_rel_error']:.3f} mean relative error)"
    )

    print_table(
        "ISSUE-8 — trace-driven cost-model calibration (mix family)",
        ("constant", "seconds per unit", "mean rel. error"),
        [
            ("hand-calibrated", f"{report['hand_unit_cost_s']:.3g}",
             f"{report['hand_mean_rel_error']:.3f}"),
            ("fitted from trace", f"{report['unit_cost_s']:.3g}",
             f"{report['mean_rel_error']:.3f}"),
        ],
    )
    record_bench(
        "BENCH_obs.json",
        "calibrate-mix-family",
        0.0,
        pairs=report["pairs"],
        hand_unit_cost_s=report["hand_unit_cost_s"],
        hand_mean_rel_error=report["hand_mean_rel_error"],
        unit_cost_s=round(report["unit_cost_s"], 9),
        mean_rel_error=report["mean_rel_error"],
    )
